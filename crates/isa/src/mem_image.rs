//! Sparse byte-addressable data memory.
//!
//! [`MemoryImage`] is the functional data memory shared by the golden
//! interpreter and the pipeline models' architectural state. It is a
//! sparse page map: reads of never-written addresses return zero and do
//! not allocate, so wrong-path or wild loads cannot blow up the footprint.
//!
//! The page map is tuned for the simulator's hot loop: pages live in a
//! dense slot vector behind a `page number -> slot` index with a cheap
//! multiplicative hasher, accesses that fit inside one page take a
//! single lookup (not one per byte), and a one-entry last-page cache —
//! refreshed by every `&mut` access — short-circuits the index for the
//! common run of touches to the same page. Accesses that straddle a
//! page boundary (including address-space wraparound past `u64::MAX`)
//! fall back to a byte-wise slow path with wrapping address arithmetic.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Bytes per backing page.
const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sentinel slot marking the last-page cache as empty.
const NO_SLOT: u32 = u32::MAX;

/// Multiplicative (Fibonacci) hasher for page numbers. Page keys are
/// single `u64`s with low entropy in the high bits, so a multiply by
/// the golden-ratio constant plus an xor-shift disperses them far more
/// cheaply than the default SipHash.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let x = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }
}

type PageIndex = HashMap<u64, u32, BuildHasherDefault<PageHasher>>;

/// Sparse, byte-addressable 64-bit memory.
///
/// # Examples
///
/// ```
/// use ff_isa::MemoryImage;
///
/// let mut mem = MemoryImage::new();
/// mem.write_u64(0x1000, 42);
/// assert_eq!(mem.read_u64(0x1000), 42);
/// // Unwritten memory reads as zero.
/// assert_eq!(mem.read_u64(0xdead_beef), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    /// Page number -> slot in `pages`. Pages are never deallocated, so
    /// slots are stable for the lifetime of the image.
    slots: PageIndex,
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Last-touched `(page number, slot)`; `NO_SLOT` when empty. Only
    /// `&mut self` accessors refresh it, which keeps the type `Sync`
    /// for the parallel sweep engine.
    last_page: u64,
    last_slot: u32,
}

/// Two images are equal when the same set of pages is resident with the
/// same contents; the last-page cache is a lookup accelerator, not
/// state.
impl PartialEq for MemoryImage {
    fn eq(&self, other: &Self) -> bool {
        self.slots.len() == other.slots.len()
            && self.slots.iter().all(|(&page, &slot)| {
                other
                    .slots
                    .get(&page)
                    .is_some_and(|&o| other.pages[o as usize] == self.pages[slot as usize])
            })
    }
}

impl MemoryImage {
    /// Creates an empty memory; every address reads as zero.
    #[must_use]
    pub fn new() -> Self {
        Self { slots: PageIndex::default(), pages: Vec::new(), last_page: 0, last_slot: NO_SLOT }
    }

    /// Number of resident (written) pages; useful for footprint assertions
    /// in tests.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The slot holding `page`, if resident. Consults the last-page
    /// cache but cannot refresh it (`&self`).
    #[inline]
    fn slot_of(&self, page: u64) -> Option<u32> {
        if self.last_slot != NO_SLOT && self.last_page == page {
            return Some(self.last_slot);
        }
        self.slots.get(&page).copied()
    }

    /// Like [`Self::slot_of`], refreshing the last-page cache on an
    /// index hit.
    #[inline]
    fn slot_of_mut(&mut self, page: u64) -> Option<u32> {
        if self.last_slot != NO_SLOT && self.last_page == page {
            return Some(self.last_slot);
        }
        let slot = self.slots.get(&page).copied();
        if let Some(s) = slot {
            self.last_page = page;
            self.last_slot = s;
        }
        slot
    }

    /// The slot holding `page`, allocating a zeroed page if absent, and
    /// refreshing the last-page cache either way.
    #[inline]
    fn slot_or_alloc(&mut self, page: u64) -> u32 {
        if self.last_slot != NO_SLOT && self.last_page == page {
            return self.last_slot;
        }
        let next = self.pages.len() as u32;
        let slot = *self.slots.entry(page).or_insert(next);
        if slot == next {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        self.last_page = page;
        self.last_slot = slot;
        slot
    }

    /// Reads a single byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => self.pages[slot as usize][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes a single byte, allocating the containing page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let slot = self.slot_or_alloc(addr >> PAGE_SHIFT);
        self.pages[slot as usize][(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` bytes (1..=8) little-endian, zero-extended to 64 bits.
    ///
    /// Accesses contained in one page take a single page lookup;
    /// page-straddling accesses (including wraparound past `u64::MAX`,
    /// which continues byte-wise at address 0) fall back to the
    /// byte-wise slow path.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    #[must_use]
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "access size {size} out of range");
        let off = (addr & PAGE_MASK) as usize;
        let size_b = size as usize;
        if off + size_b <= PAGE_SIZE {
            let mut buf = [0u8; 8];
            if let Some(slot) = self.slot_of(addr >> PAGE_SHIFT) {
                buf[..size_b].copy_from_slice(&self.pages[slot as usize][off..off + size_b]);
            }
            return u64::from_le_bytes(buf);
        }
        self.read_straddle(addr, size)
    }

    /// Reads like [`Self::read`], additionally refreshing the last-page
    /// cache so runs of accesses to the same page skip the page index.
    /// The pipeline models and the interpreter, which own their memory,
    /// use this on the load path.
    #[must_use]
    pub fn load(&mut self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "access size {size} out of range");
        let off = (addr & PAGE_MASK) as usize;
        let size_b = size as usize;
        if off + size_b <= PAGE_SIZE {
            let mut buf = [0u8; 8];
            if let Some(slot) = self.slot_of_mut(addr >> PAGE_SHIFT) {
                buf[..size_b].copy_from_slice(&self.pages[slot as usize][off..off + size_b]);
            }
            return u64::from_le_bytes(buf);
        }
        self.read_straddle(addr, size)
    }

    /// Byte-wise slow path for page-straddling reads; wrapping address
    /// arithmetic makes an access that runs past `u64::MAX` continue at
    /// address 0, mirroring the historical byte-loop semantics.
    #[cold]
    fn read_straddle(&self, addr: u64, size: u64) -> u64 {
        let mut value = 0u64;
        for i in 0..size {
            value |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        value
    }

    /// Writes the low `size` bytes (1..=8) of `value` little-endian.
    ///
    /// Same fast/slow-path split as [`Self::read`]: one page lookup
    /// when the access fits in a page, byte-wise with wraparound when
    /// it straddles.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!((1..=8).contains(&size), "access size {size} out of range");
        let off = (addr & PAGE_MASK) as usize;
        let size_b = size as usize;
        if off + size_b <= PAGE_SIZE {
            let slot = self.slot_or_alloc(addr >> PAGE_SHIFT);
            let bytes = value.to_le_bytes();
            self.pages[slot as usize][off..off + size_b].copy_from_slice(&bytes[..size_b]);
            return;
        }
        self.write_straddle(addr, size, value);
    }

    /// Byte-wise slow path for page-straddling writes.
    #[cold]
    fn write_straddle(&mut self, addr: u64, size: u64, value: u64) {
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads an 8-byte little-endian word.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes an 8-byte little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Reads an 8-byte IEEE-754 double.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an 8-byte IEEE-754 double.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Writes a slice of 64-bit words starting at `addr` (8-byte stride).
    pub fn write_u64s(&mut self, addr: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *v);
        }
    }

    /// Writes a slice of doubles starting at `addr` (8-byte stride).
    pub fn write_f64s(&mut self, addr: u64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero_without_allocating() {
        let mem = MemoryImage::new();
        assert_eq!(mem.read(0, 8), 0);
        assert_eq!(mem.read(u64::MAX - 7, 8), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_write_round_trip_all_sizes() {
        let mut mem = MemoryImage::new();
        for size in 1..=8u64 {
            let v = 0x1122_3344_5566_7788u64;
            mem.write(0x2000, size, v);
            let mask = if size == 8 { u64::MAX } else { (1 << (8 * size)) - 1 };
            assert_eq!(mem.read(0x2000, size), v & mask, "size {size}");
            assert_eq!(mem.load(0x2000, size), v & mask, "load size {size}");
        }
    }

    #[test]
    fn writes_are_little_endian() {
        let mut mem = MemoryImage::new();
        mem.write(0x100, 4, 0xAABB_CCDD);
        assert_eq!(mem.read_u8(0x100), 0xDD);
        assert_eq!(mem.read_u8(0x103), 0xAA);
    }

    #[test]
    fn page_crossing_access_round_trips() {
        let mut mem = MemoryImage::new();
        let addr = (1 << PAGE_SHIFT) - 3; // straddles the first page boundary
        mem.write_u64(addr, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(addr), 0x0102_0304_0506_0708);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn every_straddling_offset_round_trips() {
        // Each access size at each offset that makes it cross the page
        // boundary, interleaved with neighbor checks: the fast path and
        // the byte-wise slow path must agree byte for byte.
        for size in 2..=8u64 {
            for back in 1..size {
                let mut mem = MemoryImage::new();
                let addr = (1u64 << PAGE_SHIFT) - back;
                let v = 0xA1B2_C3D4_E5F6_0718u64;
                let mask = if size == 8 { u64::MAX } else { (1 << (8 * size)) - 1 };
                mem.write(addr, size, v);
                assert_eq!(mem.read(addr, size), v & mask, "size {size} back {back}");
                assert_eq!(mem.resident_pages(), 2, "size {size} back {back}");
                // Bytes outside the access stay zero.
                assert_eq!(mem.read_u8(addr - 1), 0);
                assert_eq!(mem.read_u8(addr.wrapping_add(size)), 0);
            }
        }
    }

    #[test]
    fn access_at_top_of_address_space_round_trips() {
        // u64::MAX - 7: the 8-byte access ends exactly at the last byte
        // of the address space — in one page, no wraparound.
        let mut mem = MemoryImage::new();
        mem.write_u64(u64::MAX - 7, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(mem.read_u64(u64::MAX - 7), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(mem.resident_pages(), 1);
    }

    #[test]
    fn access_wrapping_past_address_space_end_wraps_to_zero() {
        // u64::MAX - 3: the 8-byte access covers the last four bytes of
        // the address space and wraps to bytes 0..=3 of address 0,
        // matching the byte-loop semantics (wrapping_add per byte).
        let mut mem = MemoryImage::new();
        mem.write_u64(u64::MAX - 3, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(u64::MAX - 3), 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u8(0), 0x04);
        assert_eq!(mem.read_u8(3), 0x01);
        assert_eq!(mem.read_u8(u64::MAX), 0x05);
        assert_eq!(mem.resident_pages(), 2);
        // The wrapped prefix is readable as its own access at 0.
        assert_eq!(mem.read(0, 4), 0x0102_0304);
    }

    #[test]
    fn partial_write_preserves_neighbors() {
        let mut mem = MemoryImage::new();
        mem.write_u64(0x40, u64::MAX);
        mem.write(0x42, 2, 0);
        assert_eq!(mem.read_u64(0x40), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn f64_round_trips() {
        let mut mem = MemoryImage::new();
        mem.write_f64(0x80, -3.25);
        assert_eq!(mem.read_f64(0x80), -3.25);
    }

    #[test]
    fn bulk_writers_use_word_stride() {
        let mut mem = MemoryImage::new();
        mem.write_u64s(0x0, &[1, 2, 3]);
        assert_eq!(mem.read_u64(8), 2);
        mem.write_f64s(0x100, &[1.5, 2.5]);
        assert_eq!(mem.read_f64(0x108), 2.5);
    }

    #[test]
    fn equality_ignores_lookup_caches_and_slot_order() {
        // Same logical contents written in different page orders must
        // compare equal even though the slot vectors differ.
        let mut a = MemoryImage::new();
        a.write_u64(0x0000, 7);
        a.write_u64(0x1000, 9);
        let mut b = MemoryImage::new();
        b.write_u64(0x1000, 9);
        b.write_u64(0x0000, 7);
        assert_eq!(a, b);
        b.write_u8(0x1FFF, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn clone_preserves_contents() {
        let mut mem = MemoryImage::new();
        mem.write_u64(0x3000, 0x55AA);
        let copy = mem.clone();
        assert_eq!(copy.read_u64(0x3000), 0x55AA);
        assert_eq!(copy, mem);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_size_access_panics() {
        let mem = MemoryImage::new();
        let _ = mem.read(0, 0);
    }
}
