//! Sparse byte-addressable data memory.
//!
//! [`MemoryImage`] is the functional data memory shared by the golden
//! interpreter and the pipeline models' architectural state. It is a
//! sparse page map: reads of never-written addresses return zero and do
//! not allocate, so wrong-path or wild loads cannot blow up the footprint.

use std::collections::HashMap;

/// Bytes per backing page.
const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sparse, byte-addressable 64-bit memory.
///
/// # Examples
///
/// ```
/// use ff_isa::MemoryImage;
///
/// let mut mem = MemoryImage::new();
/// mem.write_u64(0x1000, 42);
/// assert_eq!(mem.read_u64(0x1000), 42);
/// // Unwritten memory reads as zero.
/// assert_eq!(mem.read_u64(0xdead_beef), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryImage {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MemoryImage {
    /// Creates an empty memory; every address reads as zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (written) pages; useful for footprint assertions
    /// in tests.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads a single byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes a single byte, allocating the containing page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page =
            self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `size` bytes (1..=8) little-endian, zero-extended to 64 bits.
    ///
    /// Unaligned and page-crossing accesses are handled byte-wise.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    #[must_use]
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!((1..=8).contains(&size), "access size {size} out of range");
        let mut value = 0u64;
        for i in 0..size {
            value |= u64::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        value
    }

    /// Writes the low `size` bytes (1..=8) of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!((1..=8).contains(&size), "access size {size} out of range");
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads an 8-byte little-endian word.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes an 8-byte little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Reads an 8-byte IEEE-754 double.
    #[must_use]
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an 8-byte IEEE-754 double.
    pub fn write_f64(&mut self, addr: u64, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    /// Writes a slice of 64-bit words starting at `addr` (8-byte stride).
    pub fn write_u64s(&mut self, addr: u64, values: &[u64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u64(addr + 8 * i as u64, *v);
        }
    }

    /// Writes a slice of doubles starting at `addr` (8-byte stride).
    pub fn write_f64s(&mut self, addr: u64, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f64(addr + 8 * i as u64, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero_without_allocating() {
        let mem = MemoryImage::new();
        assert_eq!(mem.read(0, 8), 0);
        assert_eq!(mem.read(u64::MAX - 7, 8), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn read_write_round_trip_all_sizes() {
        let mut mem = MemoryImage::new();
        for size in 1..=8u64 {
            let v = 0x1122_3344_5566_7788u64;
            mem.write(0x2000, size, v);
            let mask = if size == 8 { u64::MAX } else { (1 << (8 * size)) - 1 };
            assert_eq!(mem.read(0x2000, size), v & mask, "size {size}");
        }
    }

    #[test]
    fn writes_are_little_endian() {
        let mut mem = MemoryImage::new();
        mem.write(0x100, 4, 0xAABB_CCDD);
        assert_eq!(mem.read_u8(0x100), 0xDD);
        assert_eq!(mem.read_u8(0x103), 0xAA);
    }

    #[test]
    fn page_crossing_access_round_trips() {
        let mut mem = MemoryImage::new();
        let addr = (1 << PAGE_SHIFT) - 3; // straddles the first page boundary
        mem.write_u64(addr, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(addr), 0x0102_0304_0506_0708);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn partial_write_preserves_neighbors() {
        let mut mem = MemoryImage::new();
        mem.write_u64(0x40, u64::MAX);
        mem.write(0x42, 2, 0);
        assert_eq!(mem.read_u64(0x40), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn f64_round_trips() {
        let mut mem = MemoryImage::new();
        mem.write_f64(0x80, -3.25);
        assert_eq!(mem.read_f64(0x80), -3.25);
    }

    #[test]
    fn bulk_writers_use_word_stride() {
        let mut mem = MemoryImage::new();
        mem.write_u64s(0x0, &[1, 2, 3]);
        assert_eq!(mem.read_u64(8), 2);
        mem.write_f64s(0x100, &[1.5, 2.5]);
        assert_eq!(mem.read_f64(0x108), 2.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_size_access_panics() {
        let mem = MemoryImage::new();
        let _ = mem.read(0, 0);
    }
}
