//! Assembler-style program construction with labels.
//!
//! [`ProgramBuilder`] is how kernels are written: push instructions,
//! mark issue-group boundaries with [`ProgramBuilder::stop`], and use
//! labels for branch targets. `build` patches label fixups and runs full
//! [`Program`] validation.
//!
//! # Examples
//!
//! A counted loop:
//!
//! ```
//! use ff_isa::{ProgramBuilder, CmpKind};
//! use ff_isa::reg::{IntReg, PredReg};
//!
//! let (i, n) = (IntReg::n(1), IntReg::n(2));
//! let (pt, pf) = (PredReg::n(1), PredReg::n(2));
//!
//! let mut b = ProgramBuilder::new();
//! b.movi(i, 0);
//! b.movi(n, 10);
//! b.stop();
//! let top = b.here();
//! b.addi(i, i, 1);
//! b.stop();
//! b.cmp(CmpKind::Lt, pt, pf, i, n);
//! b.stop();
//! b.br_cond(pt, top);
//! b.stop();
//! b.halt();
//! let program = b.build()?;
//! assert!(program.group_count() >= 4);
//! # Ok::<(), ff_isa::BuildProgramError>(())
//! ```

use crate::insn::Instruction;
use crate::op::{CmpKind, MemSize, Opcode};
use crate::program::{Program, ValidateProgramError};
use crate::reg::{FpReg, IntReg, PredReg};
use std::fmt;

/// An abstract branch target handed out by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Error from [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildProgramError {
    /// A label used as a branch target was never bound.
    UnboundLabel(Label),
    /// The finished sequence failed [`Program`] validation.
    Invalid(ValidateProgramError),
}

impl fmt::Display for BuildProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildProgramError::UnboundLabel(l) => write!(f, "label {:?} was never bound", l),
            BuildProgramError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildProgramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildProgramError::Invalid(e) => Some(e),
            BuildProgramError::UnboundLabel(_) => None,
        }
    }
}

impl From<ValidateProgramError> for BuildProgramError {
    fn from(e: ValidateProgramError) -> Self {
        BuildProgramError::Invalid(e)
    }
}

/// Incremental program constructor with label fix-ups.
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instruction>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
    pending_qp: Option<PredReg>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instructions have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Allocates a label that can be bound later with
    /// [`ProgramBuilder::bind`] (for forward branches).
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position. Forces an issue-group
    /// boundary by setting the stop bit of the previous instruction, since
    /// branch targets must begin a group.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.stop();
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Whether `label` has been bound to a position.
    #[must_use]
    pub fn is_bound(&self, label: Label) -> bool {
        self.labels[label.0].is_some()
    }

    /// Allocates a label bound to the current position (for backward
    /// branches).
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Sets the stop bit on the most recent instruction, ending the
    /// current issue group. Idempotent; no-op at the very start.
    pub fn stop(&mut self) {
        if let Some(last) = self.instrs.last_mut() {
            last.stop = true;
        }
    }

    /// Applies a qualifying predicate to the *next* pushed instruction.
    pub fn with_pred(&mut self, qp: PredReg) -> &mut Self {
        self.pending_qp = Some(qp);
        self
    }

    /// Pushes a raw opcode (honouring any pending predicate).
    pub fn push(&mut self, op: Opcode) -> &mut Self {
        let mut insn = Instruction::new(op);
        insn.qp = self.pending_qp.take();
        self.instrs.push(insn);
        self
    }

    /// Finishes the program: patches label fixups and validates.
    ///
    /// # Errors
    ///
    /// Returns [`BuildProgramError::UnboundLabel`] if a branch references
    /// a label that was never bound, or [`BuildProgramError::Invalid`] if
    /// the finished sequence fails [`Program`] validation.
    pub fn build(mut self) -> Result<Program, BuildProgramError> {
        for &(pc, label) in &self.fixups {
            let target = self.labels[label.0].ok_or(BuildProgramError::UnboundLabel(label))?;
            if let Opcode::Br { target: ref mut t } = self.instrs[pc].op {
                *t = target;
            }
        }
        Ok(Program::new(self.instrs)?)
    }

    // ---- mnemonic helpers ---------------------------------------------

    /// `d = a + b`
    pub fn add(&mut self, d: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Add { d, a, b })
    }

    /// `d = a + imm`
    pub fn addi(&mut self, d: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::AddI { d, a, imm })
    }

    /// `d = a - b`
    pub fn sub(&mut self, d: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Sub { d, a, b })
    }

    /// `d = a & b`
    pub fn and(&mut self, d: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::And { d, a, b })
    }

    /// `d = a & imm`
    pub fn andi(&mut self, d: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::AndI { d, a, imm })
    }

    /// `d = a | b`
    pub fn or(&mut self, d: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Or { d, a, b })
    }

    /// `d = a ^ b`
    pub fn xor(&mut self, d: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Xor { d, a, b })
    }

    /// `d = a ^ imm`
    pub fn xori(&mut self, d: IntReg, a: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::XorI { d, a, imm })
    }

    /// `d = a << sh`
    pub fn shli(&mut self, d: IntReg, a: IntReg, sh: u8) -> &mut Self {
        self.push(Opcode::ShlI { d, a, sh })
    }

    /// `d = a >> sh` (logical)
    pub fn shri(&mut self, d: IntReg, a: IntReg, sh: u8) -> &mut Self {
        self.push(Opcode::ShrI { d, a, sh })
    }

    /// `d = a * b`
    pub fn mul(&mut self, d: IntReg, a: IntReg, b: IntReg) -> &mut Self {
        self.push(Opcode::Mul { d, a, b })
    }

    /// `d = a`
    pub fn mov(&mut self, d: IntReg, a: IntReg) -> &mut Self {
        self.push(Opcode::Mov { d, a })
    }

    /// `d = imm`
    pub fn movi(&mut self, d: IntReg, imm: i64) -> &mut Self {
        self.push(Opcode::MovI { d, imm })
    }

    /// `pt, pf = cmp.kind(a, b)`
    pub fn cmp(
        &mut self,
        kind: CmpKind,
        pt: PredReg,
        pf: PredReg,
        a: IntReg,
        b: IntReg,
    ) -> &mut Self {
        self.push(Opcode::Cmp { kind, pt, pf, a, b })
    }

    /// `pt, pf = cmp.kind(a, imm)`
    pub fn cmpi(
        &mut self,
        kind: CmpKind,
        pt: PredReg,
        pf: PredReg,
        a: IntReg,
        imm: i64,
    ) -> &mut Self {
        self.push(Opcode::CmpI { kind, pt, pf, a, imm })
    }

    /// `d = mem8[base + off]`
    pub fn ld8(&mut self, d: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::Ld { d, base, off, size: MemSize::B8, signed: false })
    }

    /// `d = mem4[base + off]` zero-extended
    pub fn ld4(&mut self, d: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::Ld { d, base, off, size: MemSize::B4, signed: false })
    }

    /// `d = mem1[base + off]` zero-extended
    pub fn ld1(&mut self, d: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::Ld { d, base, off, size: MemSize::B1, signed: false })
    }

    /// `mem8[base + off] = src`
    pub fn st8(&mut self, src: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::St { src, base, off, size: MemSize::B8 })
    }

    /// `mem4[base + off] = src`
    pub fn st4(&mut self, src: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::St { src, base, off, size: MemSize::B4 })
    }

    /// `mem1[base + off] = src`
    pub fn st1(&mut self, src: IntReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::St { src, base, off, size: MemSize::B1 })
    }

    /// `d = mem8[base + off]` as double
    pub fn ldf(&mut self, d: FpReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::LdF { d, base, off })
    }

    /// `mem8[base + off] = src` as double
    pub fn stf(&mut self, src: FpReg, base: IntReg, off: i64) -> &mut Self {
        self.push(Opcode::StF { src, base, off })
    }

    /// `d = a + b` (FP)
    pub fn fadd(&mut self, d: FpReg, a: FpReg, b: FpReg) -> &mut Self {
        self.push(Opcode::FAdd { d, a, b })
    }

    /// `d = a - b` (FP)
    pub fn fsub(&mut self, d: FpReg, a: FpReg, b: FpReg) -> &mut Self {
        self.push(Opcode::FSub { d, a, b })
    }

    /// `d = a * b` (FP)
    pub fn fmul(&mut self, d: FpReg, a: FpReg, b: FpReg) -> &mut Self {
        self.push(Opcode::FMul { d, a, b })
    }

    /// `d = a / b` (FP)
    pub fn fdiv(&mut self, d: FpReg, a: FpReg, b: FpReg) -> &mut Self {
        self.push(Opcode::FDiv { d, a, b })
    }

    /// `d = a` (FP)
    pub fn fmov(&mut self, d: FpReg, a: FpReg) -> &mut Self {
        self.push(Opcode::FMov { d, a })
    }

    /// `d = imm` (FP)
    pub fn fmovi(&mut self, d: FpReg, imm: f64) -> &mut Self {
        self.push(Opcode::FMovI { d, imm })
    }

    /// `d = (f64) a`
    pub fn icvtf(&mut self, d: FpReg, a: IntReg) -> &mut Self {
        self.push(Opcode::ICvtF { d, a })
    }

    /// `d = (i64) a`
    pub fn fcvti(&mut self, d: IntReg, a: FpReg) -> &mut Self {
        self.push(Opcode::FCvtI { d, a })
    }

    /// `pt, pf = fcmp.kind(a, b)`
    pub fn fcmp(
        &mut self,
        kind: CmpKind,
        pt: PredReg,
        pf: PredReg,
        a: FpReg,
        b: FpReg,
    ) -> &mut Self {
        self.push(Opcode::FCmp { kind, pt, pf, a, b })
    }

    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, label));
        self.push(Opcode::Br { target: usize::MAX })
    }

    /// Conditional branch to `label` when predicate `qp` is true.
    pub fn br_cond(&mut self, qp: PredReg, label: Label) -> &mut Self {
        let pc = self.instrs.len();
        self.fixups.push((pc, label));
        self.with_pred(qp);
        self.push(Opcode::Br { target: usize::MAX })
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Opcode::Nop)
    }

    /// Program terminator.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Opcode::Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::ArchState;
    use crate::mem_image::MemoryImage;

    fn r(i: u8) -> IntReg {
        IntReg::n(i)
    }

    fn p(i: u8) -> PredReg {
        PredReg::n(i)
    }

    #[test]
    fn backward_branch_loop_executes() {
        let mut b = ProgramBuilder::new();
        b.movi(r(1), 0);
        b.stop();
        let top = b.here();
        b.addi(r(1), r(1), 2);
        b.stop();
        b.cmpi(CmpKind::Lt, p(1), p(2), r(1), 10);
        b.stop();
        b.br_cond(p(1), top);
        b.stop();
        b.halt();
        let program = b.build().unwrap();
        let mut st = ArchState::new(&program, MemoryImage::new());
        st.run(1000);
        assert_eq!(st.int(r(1)), 10);
    }

    #[test]
    fn forward_branch_skips_code() {
        let mut b = ProgramBuilder::new();
        let skip = b.new_label();
        b.movi(r(1), 1);
        b.stop();
        b.br(skip);
        b.stop();
        b.movi(r(1), 99); // never executed
        b.stop();
        b.bind(skip);
        b.addi(r(2), r(1), 1);
        b.stop();
        b.halt();
        let program = b.build().unwrap();
        let mut st = ArchState::new(&program, MemoryImage::new());
        st.run(100);
        assert_eq!(st.int(r(1)), 1);
        assert_eq!(st.int(r(2)), 2);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let ghost = b.new_label();
        b.br(ghost);
        b.stop();
        b.halt();
        match b.build() {
            Err(BuildProgramError::UnboundLabel(_)) => {}
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn bind_forces_group_boundary() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.nop(); // no explicit stop before bind
        b.bind(l);
        b.br(l); // branch back to the bound pc
        b.stop();
        b.halt();
        // would fail validation if `l` weren't a group start
        let program = b.build().unwrap();
        assert!(program.is_group_start(1));
    }

    #[test]
    fn with_pred_applies_to_next_instruction_only() {
        let mut b = ProgramBuilder::new();
        b.with_pred(p(3));
        b.movi(r(1), 5);
        b.movi(r(2), 6);
        b.stop();
        b.halt();
        let program = b.build().unwrap();
        assert_eq!(program.fetch(0).qp, Some(p(3)));
        assert_eq!(program.fetch(1).qp, None);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn stop_is_idempotent_and_safe_when_empty() {
        let mut b = ProgramBuilder::new();
        b.stop(); // no instructions yet: no-op
        b.nop();
        b.stop();
        b.stop();
        b.halt();
        let program = b.build().unwrap();
        assert!(program.fetch(0).stop);
    }
}
