//! Register name types for the EPIC-style ISA.
//!
//! The machine has three architectural register files, mirroring the
//! register classes of EPIC architectures such as Itanium:
//!
//! * 64 general (integer) registers `r0..r63` — [`IntReg`]
//! * 64 floating-point registers `f0..f63` — [`FpReg`]
//! * 64 one-bit predicate registers `p0..p63` — [`PredReg`]
//!
//! All three are thin validated newtypes over a register index
//! ([C-NEWTYPE]). [`RegId`] unifies the three classes into a single flat
//! namespace of `3 * 64 = 192` slots so that pipeline scoreboards and the
//! two-pass A-file can be indexed by one dense integer.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of registers in each architectural register file.
pub const REGS_PER_FILE: usize = 64;

/// Total number of architectural registers across all three files.
///
/// This is the size of a flat scoreboard indexed by [`RegId::index`].
pub const TOTAL_REGS: usize = 3 * REGS_PER_FILE;

/// Error returned when constructing a register name from an out-of-range
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRegError {
    /// The rejected index.
    pub index: u8,
}

impl fmt::Display for InvalidRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range (must be < {})", self.index, REGS_PER_FILE)
    }
}

impl std::error::Error for InvalidRegError {}

macro_rules! reg_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u8);

        impl $name {
            /// Creates a register name, validating the index.
            ///
            /// # Errors
            ///
            /// Returns [`InvalidRegError`] if `index >= 64`.
            pub fn new(index: u8) -> Result<Self, InvalidRegError> {
                if (index as usize) < REGS_PER_FILE {
                    Ok(Self(index))
                } else {
                    Err(InvalidRegError { index })
                }
            }

            /// Creates a register name without validating the index.
            ///
            /// # Panics
            ///
            /// Panics if `index >= 64`. Intended for literals in
            /// hand-written kernels where the index is obviously valid.
            #[must_use]
            pub const fn n(index: u8) -> Self {
                assert!((index as usize) < REGS_PER_FILE);
                Self(index)
            }

            /// Returns the register index within its file (`0..64`).
            #[must_use]
            pub const fn raw(self) -> u8 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

reg_newtype!(
    /// A general-purpose (integer) register name, `r0..r63`.
    IntReg,
    "r"
);
reg_newtype!(
    /// A floating-point register name, `f0..f63`.
    FpReg,
    "f"
);
reg_newtype!(
    /// A one-bit predicate register name, `p0..p63`.
    PredReg,
    "p"
);

/// A register name in the unified flat namespace of all three files.
///
/// Scoreboards, the two-pass A-file, and dependence trackers index their
/// storage by [`RegId::index`], which maps integer registers to `0..64`,
/// floating-point registers to `64..128`, and predicates to `128..192`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegId {
    /// A general (integer) register.
    Int(IntReg),
    /// A floating-point register.
    Fp(FpReg),
    /// A predicate register.
    Pred(PredReg),
}

impl RegId {
    /// Returns the dense index of this register in `0..TOTAL_REGS`.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            RegId::Int(r) => r.raw() as usize,
            RegId::Fp(r) => REGS_PER_FILE + r.raw() as usize,
            RegId::Pred(r) => 2 * REGS_PER_FILE + r.raw() as usize,
        }
    }

    /// Reconstructs a register name from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= TOTAL_REGS`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < TOTAL_REGS, "register index {index} out of range");
        let within = (index % REGS_PER_FILE) as u8;
        match index / REGS_PER_FILE {
            0 => RegId::Int(IntReg(within)),
            1 => RegId::Fp(FpReg(within)),
            _ => RegId::Pred(PredReg(within)),
        }
    }
}

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegId::Int(r) => r.fmt(f),
            RegId::Fp(r) => r.fmt(f),
            RegId::Pred(r) => r.fmt(f),
        }
    }
}

impl From<IntReg> for RegId {
    fn from(r: IntReg) -> Self {
        RegId::Int(r)
    }
}

impl From<FpReg> for RegId {
    fn from(r: FpReg) -> Self {
        RegId::Fp(r)
    }
}

impl From<PredReg> for RegId {
    fn from(r: PredReg) -> Self {
        RegId::Pred(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_in_range_indices() {
        for i in 0..64 {
            assert_eq!(IntReg::new(i).unwrap().raw(), i);
            assert_eq!(FpReg::new(i).unwrap().raw(), i);
            assert_eq!(PredReg::new(i).unwrap().raw(), i);
        }
    }

    #[test]
    fn new_rejects_out_of_range_indices() {
        assert!(IntReg::new(64).is_err());
        assert!(FpReg::new(200).is_err());
        assert!(PredReg::new(255).is_err());
    }

    #[test]
    fn invalid_reg_error_displays_index() {
        let err = IntReg::new(99).unwrap_err();
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn display_uses_file_prefix() {
        assert_eq!(IntReg::n(7).to_string(), "r7");
        assert_eq!(FpReg::n(12).to_string(), "f12");
        assert_eq!(PredReg::n(0).to_string(), "p0");
        assert_eq!(RegId::Fp(FpReg::n(3)).to_string(), "f3");
    }

    #[test]
    fn reg_id_index_is_dense_and_disjoint() {
        assert_eq!(RegId::Int(IntReg::n(0)).index(), 0);
        assert_eq!(RegId::Int(IntReg::n(63)).index(), 63);
        assert_eq!(RegId::Fp(FpReg::n(0)).index(), 64);
        assert_eq!(RegId::Fp(FpReg::n(63)).index(), 127);
        assert_eq!(RegId::Pred(PredReg::n(0)).index(), 128);
        assert_eq!(RegId::Pred(PredReg::n(63)).index(), 191);
    }

    #[test]
    fn reg_id_round_trips_through_index() {
        for i in 0..TOTAL_REGS {
            assert_eq!(RegId::from_index(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_id_from_index_panics_out_of_range() {
        let _ = RegId::from_index(TOTAL_REGS);
    }
}
