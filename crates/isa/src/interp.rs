//! Golden-model functional interpreter.
//!
//! [`ArchState`] executes a [`Program`] one instruction at a time with no
//! timing model. The pipeline simulators are differentially tested against
//! it: for any program, the final architectural register file, memory, and
//! retired-instruction count must match this interpreter exactly.

use crate::mem_image::MemoryImage;
use crate::program::Program;
use crate::reg::{FpReg, IntReg, PredReg, RegId, TOTAL_REGS};
use crate::semantics::{evaluate, load_write, Effect, RegRead};

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt`.
    Halted,
    /// The dynamic instruction limit was reached first.
    InstrLimit,
}

/// Summary of a completed interpreter run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Dynamic instructions executed (including nullified ones).
    pub instrs: u64,
    /// Why execution stopped.
    pub stop: StopReason,
}

/// Complete architectural state: program counter, the three register
/// files (as one flat raw-bits array), and data memory.
///
/// # Examples
///
/// ```
/// use ff_isa::{ArchState, Instruction, MemoryImage, Opcode, Program};
/// use ff_isa::reg::IntReg;
///
/// let program = Program::new(vec![
///     Instruction::new(Opcode::MovI { d: IntReg::n(1), imm: 7 }).with_stop(),
///     Instruction::new(Opcode::Halt),
/// ])?;
/// let mut state = ArchState::new(&program, MemoryImage::new());
/// let summary = state.run(1_000);
/// assert_eq!(summary.instrs, 2);
/// assert_eq!(state.int(IntReg::n(1)), 7);
/// # Ok::<(), ff_isa::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ArchState<'p> {
    program: &'p Program,
    pc: usize,
    regs: [u64; TOTAL_REGS],
    mem: MemoryImage,
    halted: bool,
    instrs: u64,
}

impl<'p> ArchState<'p> {
    /// Creates a fresh state at `pc = 0` with all registers zero.
    #[must_use]
    pub fn new(program: &'p Program, mem: MemoryImage) -> Self {
        ArchState { program, pc: 0, regs: [0; TOTAL_REGS], mem, halted: false, instrs: 0 }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Whether the program has executed `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instructions executed so far.
    #[must_use]
    pub fn instr_count(&self) -> u64 {
        self.instrs
    }

    /// Raw register-file image (for differential comparison).
    #[must_use]
    pub fn reg_bits(&self) -> &[u64; TOTAL_REGS] {
        &self.regs
    }

    /// The data memory.
    #[must_use]
    pub fn mem(&self) -> &MemoryImage {
        &self.mem
    }

    /// Mutable access to data memory (e.g. to pre-load inputs).
    pub fn mem_mut(&mut self) -> &mut MemoryImage {
        &mut self.mem
    }

    /// Integer register value.
    #[must_use]
    pub fn int(&self, r: IntReg) -> u64 {
        self.regs[RegId::Int(r).index()]
    }

    /// Floating-point register value.
    #[must_use]
    pub fn fp(&self, r: FpReg) -> f64 {
        f64::from_bits(self.regs[RegId::Fp(r).index()])
    }

    /// Predicate register value.
    #[must_use]
    pub fn pred(&self, r: PredReg) -> bool {
        self.regs[RegId::Pred(r).index()] != 0
    }

    /// Sets an integer register (e.g. to pass kernel arguments).
    pub fn set_int(&mut self, r: IntReg, value: u64) {
        self.regs[RegId::Int(r).index()] = value;
    }

    /// Executes one instruction. Returns `false` once halted (further
    /// calls are no-ops).
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(insn) = self.program.get(self.pc) else {
            // Validated programs cannot fall off the end; treat it as halt
            // defensively for robustness under manual state manipulation.
            self.halted = true;
            return false;
        };
        self.instrs += 1;
        let mut next_pc = self.pc + 1;
        match evaluate(insn, &self.regs) {
            Effect::Nullified | Effect::Nop => {}
            Effect::Write(writes) => {
                for w in writes.iter() {
                    self.regs[w.reg.index()] = w.bits;
                }
            }
            Effect::Load { addr, size, signed, dest } => {
                let raw = self.mem.load(addr, size);
                self.regs[dest.index()] = load_write(raw, size, signed);
            }
            Effect::Store { addr, size, bits } => {
                self.mem.write(addr, size, bits);
            }
            Effect::Branch { taken, target } => {
                if taken {
                    next_pc = target;
                }
            }
            Effect::Halt => {
                self.halted = true;
                return false;
            }
        }
        self.pc = next_pc;
        true
    }

    /// Runs until `halt` or until `max_instrs` dynamic instructions.
    pub fn run(&mut self, max_instrs: u64) -> RunSummary {
        let start = self.instrs;
        while !self.halted && self.instrs - start < max_instrs {
            if !self.step() {
                break;
            }
        }
        RunSummary {
            instrs: self.instrs,
            stop: if self.halted { StopReason::Halted } else { StopReason::InstrLimit },
        }
    }
}

impl RegRead for ArchState<'_> {
    fn read(&self, r: RegId) -> u64 {
        self.regs[r.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Instruction;
    use crate::op::{CmpKind, MemSize, Opcode};

    fn r(i: u8) -> IntReg {
        IntReg::n(i)
    }

    fn p(i: u8) -> PredReg {
        PredReg::n(i)
    }

    fn prog(instrs: Vec<Instruction>) -> Program {
        Program::new(instrs).expect("valid test program")
    }

    #[test]
    fn counted_loop_sums_array() {
        // r1 = base, r2 = i, r3 = sum, loop 4 elements of 8 bytes
        let program = prog(vec![
            Instruction::new(Opcode::MovI { d: r(1), imm: 0x1000 }),
            Instruction::new(Opcode::MovI { d: r(2), imm: 0 }),
            Instruction::new(Opcode::MovI { d: r(3), imm: 0 }).with_stop(),
            // loop: (pc 3)
            Instruction::new(Opcode::ShlI { d: r(4), a: r(2), sh: 3 }).with_stop(),
            Instruction::new(Opcode::Add { d: r(5), a: r(1), b: r(4) }).with_stop(),
            Instruction::new(Opcode::Ld {
                d: r(6),
                base: r(5),
                off: 0,
                size: MemSize::B8,
                signed: false,
            })
            .with_stop(),
            Instruction::new(Opcode::Add { d: r(3), a: r(3), b: r(6) }),
            Instruction::new(Opcode::AddI { d: r(2), a: r(2), imm: 1 }).with_stop(),
            Instruction::new(Opcode::CmpI {
                kind: CmpKind::Lt,
                pt: p(1),
                pf: p(2),
                a: r(2),
                imm: 4,
            })
            .with_stop(),
            Instruction::new(Opcode::Br { target: 3 }).predicated(p(1)).with_stop(),
            Instruction::new(Opcode::Halt),
        ]);
        let mut mem = MemoryImage::new();
        mem.write_u64s(0x1000, &[10, 20, 30, 40]);
        let mut st = ArchState::new(&program, mem);
        let summary = st.run(10_000);
        assert_eq!(summary.stop, StopReason::Halted);
        assert_eq!(st.int(r(3)), 100);
        assert_eq!(st.int(r(2)), 4);
    }

    #[test]
    fn instruction_limit_stops_infinite_loop() {
        let program = prog(vec![Instruction::new(Opcode::Br { target: 0 })]);
        let mut st = ArchState::new(&program, MemoryImage::new());
        let summary = st.run(500);
        assert_eq!(summary.stop, StopReason::InstrLimit);
        assert_eq!(summary.instrs, 500);
        assert!(!st.is_halted());
    }

    #[test]
    fn store_then_load_round_trips_through_memory() {
        let program = prog(vec![
            Instruction::new(Opcode::MovI { d: r(1), imm: 0x40 }),
            Instruction::new(Opcode::MovI { d: r(2), imm: -1 }).with_stop(),
            Instruction::new(Opcode::St { src: r(2), base: r(1), off: 0, size: MemSize::B4 })
                .with_stop(),
            Instruction::new(Opcode::Ld {
                d: r(3),
                base: r(1),
                off: 0,
                size: MemSize::B4,
                signed: true,
            })
            .with_stop(),
            Instruction::new(Opcode::Ld {
                d: r(4),
                base: r(1),
                off: 0,
                size: MemSize::B4,
                signed: false,
            })
            .with_stop(),
            Instruction::new(Opcode::Halt),
        ]);
        let mut st = ArchState::new(&program, MemoryImage::new());
        st.run(100);
        assert_eq!(st.int(r(3)), u64::MAX); // sign-extended
        assert_eq!(st.int(r(4)), 0xFFFF_FFFF); // zero-extended
    }

    #[test]
    fn nullified_store_does_not_write_memory() {
        let program = prog(vec![
            Instruction::new(Opcode::MovI { d: r(1), imm: 0x40 }),
            Instruction::new(Opcode::MovI { d: r(2), imm: 7 }).with_stop(),
            Instruction::new(Opcode::St { src: r(2), base: r(1), off: 0, size: MemSize::B8 })
                .predicated(p(5))
                .with_stop(),
            Instruction::new(Opcode::Halt),
        ]);
        let mut st = ArchState::new(&program, MemoryImage::new());
        st.run(100);
        assert_eq!(st.mem().read_u64(0x40), 0);
    }

    #[test]
    fn halt_reports_once_and_stays_halted() {
        let program = prog(vec![Instruction::new(Opcode::Halt)]);
        let mut st = ArchState::new(&program, MemoryImage::new());
        assert!(!st.step()); // halt executes, returns false
        assert!(st.is_halted());
        assert_eq!(st.instr_count(), 1);
        assert!(!st.step());
        assert_eq!(st.instr_count(), 1);
    }

    #[test]
    fn set_int_passes_arguments() {
        let program = prog(vec![
            Instruction::new(Opcode::AddI { d: r(2), a: r(1), imm: 1 }).with_stop(),
            Instruction::new(Opcode::Halt),
        ]);
        let mut st = ArchState::new(&program, MemoryImage::new());
        st.set_int(r(1), 41);
        st.run(10);
        assert_eq!(st.int(r(2)), 42);
    }
}
