//! Programs: validated, fully scheduled instruction sequences.

use crate::insn::Instruction;
use crate::op::Opcode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error found while validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// The program contains no instructions.
    Empty,
    /// A branch at `pc` targets an instruction index outside the program.
    TargetOutOfRange {
        /// Location of the offending branch.
        pc: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A branch at `pc` targets `target`, which is not the first
    /// instruction of an issue group.
    TargetNotGroupStart {
        /// Location of the offending branch.
        pc: usize,
        /// The misaligned target.
        target: usize,
    },
    /// No `halt` is reachable by falling off the end: the final
    /// instruction must be `halt` or an unconditional branch.
    MissingTerminator,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::Empty => write!(f, "program is empty"),
            ValidateProgramError::TargetOutOfRange { pc, target } => {
                write!(f, "branch at {pc} targets out-of-range index {target}")
            }
            ValidateProgramError::TargetNotGroupStart { pc, target } => {
                write!(f, "branch at {pc} targets {target}, which is not an issue-group start")
            }
            ValidateProgramError::MissingTerminator => {
                write!(f, "final instruction must be `halt` or an unconditional branch")
            }
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// A validated, fully scheduled program.
///
/// The instruction sequence *is* the compiler's schedule: stop bits
/// partition it into issue groups, exactly as an EPIC binary encodes
/// them. Construction via [`Program::new`] validates:
///
/// * the program is non-empty and cannot fall off the end,
/// * every branch target is in range and lands on an issue-group start
///   (the instruction after a stop bit, or index 0).
///
/// # Examples
///
/// ```
/// use ff_isa::{Instruction, Opcode, Program};
///
/// let program = Program::new(vec![
///     Instruction::new(Opcode::Nop).with_stop(),
///     Instruction::new(Opcode::Halt),
/// ])?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), ff_isa::ValidateProgramError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instruction>,
    /// `group_start[pc]` is true iff `pc` begins an issue group.
    group_starts: Vec<bool>,
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateProgramError`] describing the first defect
    /// found; see the type-level docs for the checked invariants.
    pub fn new(instrs: Vec<Instruction>) -> Result<Self, ValidateProgramError> {
        if instrs.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        let last = instrs.last().expect("non-empty");
        let terminates = matches!(last.op, Opcode::Halt)
            || (matches!(last.op, Opcode::Br { .. }) && last.qp.is_none());
        if !terminates {
            return Err(ValidateProgramError::MissingTerminator);
        }

        let mut group_starts = vec![false; instrs.len()];
        let mut start_of_group = true;
        for (pc, insn) in instrs.iter().enumerate() {
            group_starts[pc] = start_of_group;
            start_of_group = insn.stop;
        }

        for (pc, insn) in instrs.iter().enumerate() {
            if let Opcode::Br { target } = insn.op {
                if target >= instrs.len() {
                    return Err(ValidateProgramError::TargetOutOfRange { pc, target });
                }
                if !group_starts[target] {
                    return Err(ValidateProgramError::TargetNotGroupStart { pc, target });
                }
            }
        }

        Ok(Program { instrs, group_starts })
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program has no instructions (never true for a
    /// validated program, but provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn get(&self, pc: usize) -> Option<&Instruction> {
        self.instrs.get(pc)
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn fetch(&self, pc: usize) -> &Instruction {
        &self.instrs[pc]
    }

    /// Whether `pc` begins an issue group.
    #[must_use]
    pub fn is_group_start(&self, pc: usize) -> bool {
        self.group_starts.get(pc).copied().unwrap_or(false)
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instrs.iter()
    }

    /// The instruction indices that start each issue group, in order.
    pub fn group_start_pcs(&self) -> impl Iterator<Item = usize> + '_ {
        self.group_starts.iter().enumerate().filter_map(|(pc, &s)| s.then_some(pc))
    }

    /// Number of static issue groups.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.group_starts.iter().filter(|&&s| s).count()
    }
}

/// An intra-issue-group register hazard found by [`check_group_hazards`].
///
/// EPIC issue groups are dependence-free by contract: all members read
/// pre-group register state. A RAW or WAW inside one group would make
/// hardware group-issue semantics diverge from sequential semantics, so
/// schedules (hand-written kernels, generated programs) are linted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupHazard {
    /// Instruction that writes the register.
    pub writer_pc: usize,
    /// Later same-group instruction that reads or rewrites it.
    pub reader_pc: usize,
}

impl fmt::Display for GroupHazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "intra-group hazard: instruction {} depends on {} in the same issue group",
            self.reader_pc, self.writer_pc
        )
    }
}

impl std::error::Error for GroupHazard {}

/// Checks that no issue group contains an intra-group RAW or WAW
/// register dependence.
///
/// # Errors
///
/// Returns the first [`GroupHazard`] found.
pub fn check_group_hazards(program: &Program) -> Result<(), GroupHazard> {
    let mut writers: Vec<(crate::reg::RegId, usize)> = Vec::new();
    for (pc, insn) in program.iter().enumerate() {
        if program.is_group_start(pc) {
            writers.clear();
        }
        for src in insn.sources() {
            if let Some(&(_, writer_pc)) = writers.iter().find(|(r, _)| *r == src) {
                return Err(GroupHazard { writer_pc, reader_pc: pc });
            }
        }
        for d in insn.dests() {
            if let Some(&(_, writer_pc)) = writers.iter().find(|(r, _)| *r == d) {
                return Err(GroupHazard { writer_pc, reader_pc: pc });
            }
        }
        for d in insn.dests() {
            writers.push((d, pc));
        }
    }
    Ok(())
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, insn) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:5}: {insn}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{IntReg, PredReg};

    fn halt() -> Instruction {
        Instruction::new(Opcode::Halt)
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(Program::new(vec![]).unwrap_err(), ValidateProgramError::Empty);
    }

    #[test]
    fn program_must_terminate() {
        let err = Program::new(vec![Instruction::new(Opcode::Nop)]).unwrap_err();
        assert_eq!(err, ValidateProgramError::MissingTerminator);
        // A conditional branch can fall through, so it does not terminate.
        let err =
            Program::new(
                vec![Instruction::new(Opcode::Br { target: 0 }).predicated(PredReg::n(1))],
            )
            .unwrap_err();
        assert_eq!(err, ValidateProgramError::MissingTerminator);
        // An unconditional branch does.
        assert!(Program::new(vec![Instruction::new(Opcode::Br { target: 0 })]).is_ok());
    }

    #[test]
    fn branch_target_bounds_checked() {
        let err =
            Program::new(vec![Instruction::new(Opcode::Br { target: 9 }).with_stop(), halt()])
                .unwrap_err();
        assert_eq!(err, ValidateProgramError::TargetOutOfRange { pc: 0, target: 9 });
    }

    #[test]
    fn branch_target_must_be_group_start() {
        // Group: [nop, nop;;][halt]; target 1 is mid-group.
        let err = Program::new(vec![
            Instruction::new(Opcode::Br { target: 1 }).predicated(PredReg::n(1)),
            Instruction::new(Opcode::Nop).with_stop(),
            halt(),
        ])
        .unwrap_err();
        assert_eq!(err, ValidateProgramError::TargetNotGroupStart { pc: 0, target: 1 });
    }

    #[test]
    fn group_starts_follow_stop_bits() {
        let p = Program::new(vec![
            Instruction::new(Opcode::Nop),
            Instruction::new(Opcode::Nop).with_stop(),
            Instruction::new(Opcode::Nop).with_stop(),
            halt(),
        ])
        .unwrap();
        assert!(p.is_group_start(0));
        assert!(!p.is_group_start(1));
        assert!(p.is_group_start(2));
        assert!(p.is_group_start(3));
        assert_eq!(p.group_count(), 3);
        assert_eq!(p.group_start_pcs().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn display_lists_instructions_with_pc() {
        let p = Program::new(vec![
            Instruction::new(Opcode::MovI { d: IntReg::n(1), imm: 5 }).with_stop(),
            halt(),
        ])
        .unwrap();
        let text = p.to_string();
        assert!(text.contains("0: movi r1 = 5 ;;"));
        assert!(text.contains("1: halt"));
    }

    #[test]
    fn group_hazard_lint_catches_raw_and_waw() {
        // RAW within a group.
        let p = Program::new(vec![
            Instruction::new(Opcode::MovI { d: IntReg::n(1), imm: 1 }),
            Instruction::new(Opcode::AddI { d: IntReg::n(2), a: IntReg::n(1), imm: 1 }).with_stop(),
            halt(),
        ])
        .unwrap();
        assert_eq!(check_group_hazards(&p), Err(GroupHazard { writer_pc: 0, reader_pc: 1 }));

        // WAW within a group.
        let p = Program::new(vec![
            Instruction::new(Opcode::MovI { d: IntReg::n(1), imm: 1 }),
            Instruction::new(Opcode::MovI { d: IntReg::n(1), imm: 2 }).with_stop(),
            halt(),
        ])
        .unwrap();
        assert!(check_group_hazards(&p).is_err());

        // Across groups is fine.
        let p = Program::new(vec![
            Instruction::new(Opcode::MovI { d: IntReg::n(1), imm: 1 }).with_stop(),
            Instruction::new(Opcode::AddI { d: IntReg::n(2), a: IntReg::n(1), imm: 1 }).with_stop(),
            halt(),
        ])
        .unwrap();
        assert_eq!(check_group_hazards(&p), Ok(()));
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let err = ValidateProgramError::TargetOutOfRange { pc: 3, target: 10 };
        let msg = err.to_string();
        assert!(msg.contains('3') && msg.contains("10"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }
}
