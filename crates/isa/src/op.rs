//! Operation definitions for the EPIC-style ISA.
//!
//! [`Opcode`] is a closed IR-style enum: each variant embeds its operand
//! register names and immediates. This keeps an instruction fully
//! self-describing — the pipeline models never consult a side table to
//! discover what an instruction reads or writes; they call
//! [`Opcode::sources`] and [`Opcode::dests`].

use crate::reg::{FpReg, IntReg, PredReg, RegId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison condition for [`Opcode::Cmp`], [`Opcode::CmpI`] and
/// [`Opcode::FCmp`].
///
/// Integer comparisons interpret their operands as signed two's-complement
/// values unless the condition is one of the explicitly unsigned variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-than-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-than-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-than-or-equal.
    Geu,
}

impl CmpKind {
    /// Evaluates the condition on two integer operands.
    #[must_use]
    pub fn eval_int(self, a: u64, b: u64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => (a as i64) < (b as i64),
            CmpKind::Le => (a as i64) <= (b as i64),
            CmpKind::Gt => (a as i64) > (b as i64),
            CmpKind::Ge => (a as i64) >= (b as i64),
            CmpKind::Ltu => a < b,
            CmpKind::Geu => a >= b,
        }
    }

    /// Evaluates the condition on two floating-point operands.
    ///
    /// NaN compares false under every condition except [`CmpKind::Ne`],
    /// matching IEEE-754 unordered-comparison semantics.
    #[must_use]
    pub fn eval_fp(self, a: f64, b: f64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Ltu => a < b,
            CmpKind::Geu => a >= b,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
            CmpKind::Ltu => "ltu",
            CmpKind::Geu => "geu",
        };
        f.write_str(s)
    }
}

/// Access width of an integer memory operation, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// The access width in bytes.
    #[must_use]
    pub const fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }
}

/// The functional-unit class an operation executes on.
///
/// The simulated machine (paper Table 1) provides per-cycle issue slots for
/// 5 ALU, 3 memory, 3 floating-point, and 3 branch operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer ALU (arithmetic, logic, compares, moves).
    Alu,
    /// Memory port (loads and stores, integer and FP).
    Mem,
    /// Floating-point unit.
    Fp,
    /// Branch unit.
    Branch,
}

impl FuClass {
    /// Every class, in [`FuClass::index`] order.
    pub const ALL: [FuClass; 4] = [FuClass::Alu, FuClass::Mem, FuClass::Fp, FuClass::Branch];

    /// Dense index (0..4) for per-class count arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            FuClass::Alu => 0,
            FuClass::Mem => 1,
            FuClass::Fp => 2,
            FuClass::Branch => 3,
        }
    }

    /// Human-readable slot label ("ALU", "memory", "FP", "branch").
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            FuClass::Alu => "ALU",
            FuClass::Mem => "memory",
            FuClass::Fp => "FP",
            FuClass::Branch => "branch",
        }
    }
}

/// Coarse latency class of an operation; the pipeline configuration maps
/// each class to a cycle count.
///
/// Loads are *variable* latency — the memory hierarchy decides — so they
/// carry no fixed class value here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Single-cycle integer operation.
    Int,
    /// Pipelined integer multiply.
    Mul,
    /// Pipelined FP add/sub/mul/convert/compare.
    FpArith,
    /// Unpipelined FP divide.
    FpDiv,
    /// Load: latency determined by the memory hierarchy.
    Load,
    /// Store: occupies a memory port for one cycle.
    Store,
    /// Branch: direction known at execute.
    Branch,
}

/// A machine operation together with its operand fields.
///
/// Every variant names the registers it reads and writes directly; use
/// [`Opcode::sources`] / [`Opcode::dests`] for generic dependence walks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields are self-describing (d/a/b/imm/base/off)
pub enum Opcode {
    // ---- integer ALU -------------------------------------------------
    /// `d = a + b`
    Add { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a + imm`
    AddI { d: IntReg, a: IntReg, imm: i64 },
    /// `d = a - b`
    Sub { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a & b`
    And { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a & imm`
    AndI { d: IntReg, a: IntReg, imm: i64 },
    /// `d = a | b`
    Or { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a ^ b`
    Xor { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a ^ imm`
    XorI { d: IntReg, a: IntReg, imm: i64 },
    /// `d = a << (b & 63)`
    Shl { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a << sh`
    ShlI { d: IntReg, a: IntReg, sh: u8 },
    /// `d = a >> (b & 63)` (logical)
    Shr { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a >> sh` (logical)
    ShrI { d: IntReg, a: IntReg, sh: u8 },
    /// `d = a * b` (wrapping, low 64 bits)
    Mul { d: IntReg, a: IntReg, b: IntReg },
    /// `d = a`
    Mov { d: IntReg, a: IntReg },
    /// `d = imm`
    MovI { d: IntReg, imm: i64 },
    /// `pt = cmp(a, b); pf = !cmp(a, b)`
    Cmp { kind: CmpKind, pt: PredReg, pf: PredReg, a: IntReg, b: IntReg },
    /// `pt = cmp(a, imm); pf = !cmp(a, imm)`
    CmpI { kind: CmpKind, pt: PredReg, pf: PredReg, a: IntReg, imm: i64 },

    // ---- memory ------------------------------------------------------
    /// `d = mem[a + off]` (zero- or sign-extended to 64 bits)
    Ld { d: IntReg, base: IntReg, off: i64, size: MemSize, signed: bool },
    /// `mem[base + off] = src` (low `size` bytes)
    St { src: IntReg, base: IntReg, off: i64, size: MemSize },
    /// `d = mem[base + off]` as an 8-byte IEEE-754 double
    LdF { d: FpReg, base: IntReg, off: i64 },
    /// `mem[base + off] = src` as an 8-byte IEEE-754 double
    StF { src: FpReg, base: IntReg, off: i64 },

    // ---- floating point ------------------------------------------------
    /// `d = a + b`
    FAdd { d: FpReg, a: FpReg, b: FpReg },
    /// `d = a - b`
    FSub { d: FpReg, a: FpReg, b: FpReg },
    /// `d = a * b`
    FMul { d: FpReg, a: FpReg, b: FpReg },
    /// `d = a / b`
    FDiv { d: FpReg, a: FpReg, b: FpReg },
    /// `d = a`
    FMov { d: FpReg, a: FpReg },
    /// `d = imm`
    FMovI { d: FpReg, imm: f64 },
    /// `d = (f64) a` — integer-to-FP convert (signed)
    ICvtF { d: FpReg, a: IntReg },
    /// `d = (i64) a` — FP-to-integer convert (truncating)
    FCvtI { d: IntReg, a: FpReg },
    /// `pt = cmp(a, b); pf = !cmp(a, b)` on FP operands
    FCmp { kind: CmpKind, pt: PredReg, pf: PredReg, a: FpReg, b: FpReg },

    // ---- control ------------------------------------------------------
    /// Branch to the issue group starting at instruction index `target`.
    ///
    /// With a qualifying predicate on the instruction this is a
    /// conditional branch; without one it is unconditional.
    Br { target: usize },
    /// Terminates the program.
    Halt,
    /// No operation (occupies an ALU slot).
    Nop,
}

/// A fixed-capacity list of register names, used for source/dest walks
/// without heap allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegList {
    regs: [Option<RegId>; 4],
    len: u8,
}

impl RegList {
    pub(crate) fn push(&mut self, r: impl Into<RegId>) {
        self.regs[self.len as usize] = Some(r.into());
        self.len += 1;
    }

    /// Number of registers in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the registers in the list.
    pub fn iter(&self) -> impl Iterator<Item = RegId> + '_ {
        self.regs.iter().take(self.len as usize).map(|r| r.unwrap())
    }

    /// Whether the list contains `r`.
    #[must_use]
    pub fn contains(&self, r: RegId) -> bool {
        self.iter().any(|x| x == r)
    }
}

impl IntoIterator for RegList {
    type Item = RegId;
    type IntoIter = IntoIter;

    fn into_iter(self) -> IntoIter {
        IntoIter { list: self, at: 0 }
    }
}

/// Owning iterator for [`RegList`].
#[derive(Debug, Clone)]
pub struct IntoIter {
    list: RegList,
    at: u8,
}

impl Iterator for IntoIter {
    type Item = RegId;

    fn next(&mut self) -> Option<RegId> {
        if self.at < self.list.len {
            let r = self.list.regs[self.at as usize];
            self.at += 1;
            r
        } else {
            None
        }
    }
}

impl Opcode {
    /// The registers this operation reads, excluding any qualifying
    /// predicate (which lives on the [`crate::insn::Instruction`]).
    #[must_use]
    pub fn sources(&self) -> RegList {
        use Opcode::*;
        let mut l = RegList::default();
        match *self {
            Add { a, b, .. }
            | Sub { a, b, .. }
            | And { a, b, .. }
            | Or { a, b, .. }
            | Xor { a, b, .. }
            | Shl { a, b, .. }
            | Shr { a, b, .. }
            | Mul { a, b, .. } => {
                l.push(a);
                l.push(b);
            }
            AddI { a, .. }
            | AndI { a, .. }
            | XorI { a, .. }
            | ShlI { a, .. }
            | ShrI { a, .. }
            | Mov { a, .. } => l.push(a),
            MovI { .. } | FMovI { .. } | Br { .. } | Halt | Nop => {}
            Cmp { a, b, .. } => {
                l.push(a);
                l.push(b);
            }
            CmpI { a, .. } => l.push(a),
            Ld { base, .. } | LdF { base, .. } => l.push(base),
            St { src, base, .. } => {
                l.push(src);
                l.push(base);
            }
            StF { src, base, .. } => {
                l.push(src);
                l.push(base);
            }
            FAdd { a, b, .. } | FSub { a, b, .. } | FMul { a, b, .. } | FDiv { a, b, .. } => {
                l.push(a);
                l.push(b);
            }
            FMov { a, .. } => l.push(a),
            ICvtF { a, .. } => l.push(a),
            FCvtI { a, .. } => l.push(a),
            FCmp { a, b, .. } => {
                l.push(a);
                l.push(b);
            }
        }
        l
    }

    /// The registers this operation writes.
    #[must_use]
    pub fn dests(&self) -> RegList {
        use Opcode::*;
        let mut l = RegList::default();
        match *self {
            Add { d, .. }
            | AddI { d, .. }
            | Sub { d, .. }
            | And { d, .. }
            | AndI { d, .. }
            | Or { d, .. }
            | Xor { d, .. }
            | XorI { d, .. }
            | Shl { d, .. }
            | ShlI { d, .. }
            | Shr { d, .. }
            | ShrI { d, .. }
            | Mul { d, .. }
            | Mov { d, .. }
            | MovI { d, .. }
            | Ld { d, .. }
            | FCvtI { d, .. } => l.push(d),
            Cmp { pt, pf, .. } | CmpI { pt, pf, .. } | FCmp { pt, pf, .. } => {
                l.push(pt);
                l.push(pf);
            }
            LdF { d, .. }
            | FAdd { d, .. }
            | FSub { d, .. }
            | FMul { d, .. }
            | FDiv { d, .. }
            | FMov { d, .. }
            | FMovI { d, .. }
            | ICvtF { d, .. } => l.push(d),
            St { .. } | StF { .. } | Br { .. } | Halt | Nop => {}
        }
        l
    }

    /// The functional-unit class this operation issues to.
    #[must_use]
    pub fn fu_class(&self) -> FuClass {
        use Opcode::*;
        match self {
            Ld { .. } | St { .. } | LdF { .. } | StF { .. } => FuClass::Mem,
            FAdd { .. }
            | FSub { .. }
            | FMul { .. }
            | FDiv { .. }
            | FMov { .. }
            | FMovI { .. }
            | ICvtF { .. }
            | FCvtI { .. }
            | FCmp { .. } => FuClass::Fp,
            Br { .. } | Halt => FuClass::Branch,
            _ => FuClass::Alu,
        }
    }

    /// The latency class of this operation.
    #[must_use]
    pub fn latency_class(&self) -> LatencyClass {
        use Opcode::*;
        match self {
            Mul { .. } => LatencyClass::Mul,
            FAdd { .. }
            | FSub { .. }
            | FMul { .. }
            | FMov { .. }
            | FMovI { .. }
            | ICvtF { .. }
            | FCvtI { .. }
            | FCmp { .. } => LatencyClass::FpArith,
            FDiv { .. } => LatencyClass::FpDiv,
            Ld { .. } | LdF { .. } => LatencyClass::Load,
            St { .. } | StF { .. } => LatencyClass::Store,
            Br { .. } | Halt => LatencyClass::Branch,
            _ => LatencyClass::Int,
        }
    }

    /// Whether this operation is a load (integer or FP).
    #[must_use]
    pub fn is_load(&self) -> bool {
        matches!(self, Opcode::Ld { .. } | Opcode::LdF { .. })
    }

    /// Whether this operation is a store (integer or FP).
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Opcode::St { .. } | Opcode::StF { .. })
    }

    /// Whether this operation is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Opcode::Br { .. })
    }

    /// Whether this operation uses the floating-point subpipeline.
    #[must_use]
    pub fn is_fp(&self) -> bool {
        self.fu_class() == FuClass::Fp
    }

    /// The mnemonic for display purposes.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        use Opcode::*;
        match self {
            Add { .. } => "add",
            AddI { .. } => "addi",
            Sub { .. } => "sub",
            And { .. } => "and",
            AndI { .. } => "andi",
            Or { .. } => "or",
            Xor { .. } => "xor",
            XorI { .. } => "xori",
            Shl { .. } => "shl",
            ShlI { .. } => "shli",
            Shr { .. } => "shr",
            ShrI { .. } => "shri",
            Mul { .. } => "mul",
            Mov { .. } => "mov",
            MovI { .. } => "movi",
            Cmp { .. } => "cmp",
            CmpI { .. } => "cmpi",
            Ld { .. } => "ld",
            St { .. } => "st",
            LdF { .. } => "ldf",
            StF { .. } => "stf",
            FAdd { .. } => "fadd",
            FSub { .. } => "fsub",
            FMul { .. } => "fmul",
            FDiv { .. } => "fdiv",
            FMov { .. } => "fmov",
            FMovI { .. } => "fmovi",
            ICvtF { .. } => "icvtf",
            FCvtI { .. } => "fcvti",
            FCmp { .. } => "fcmp",
            Br { .. } => "br",
            Halt => "halt",
            Nop => "nop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match *self {
            Add { d, a, b } => write!(f, "add {d} = {a}, {b}"),
            AddI { d, a, imm } => write!(f, "addi {d} = {a}, {imm}"),
            Sub { d, a, b } => write!(f, "sub {d} = {a}, {b}"),
            And { d, a, b } => write!(f, "and {d} = {a}, {b}"),
            AndI { d, a, imm } => write!(f, "andi {d} = {a}, {imm:#x}"),
            Or { d, a, b } => write!(f, "or {d} = {a}, {b}"),
            Xor { d, a, b } => write!(f, "xor {d} = {a}, {b}"),
            XorI { d, a, imm } => write!(f, "xori {d} = {a}, {imm:#x}"),
            Shl { d, a, b } => write!(f, "shl {d} = {a}, {b}"),
            ShlI { d, a, sh } => write!(f, "shli {d} = {a}, {sh}"),
            Shr { d, a, b } => write!(f, "shr {d} = {a}, {b}"),
            ShrI { d, a, sh } => write!(f, "shri {d} = {a}, {sh}"),
            Mul { d, a, b } => write!(f, "mul {d} = {a}, {b}"),
            Mov { d, a } => write!(f, "mov {d} = {a}"),
            MovI { d, imm } => write!(f, "movi {d} = {imm}"),
            Cmp { kind, pt, pf, a, b } => write!(f, "cmp.{kind} {pt}, {pf} = {a}, {b}"),
            CmpI { kind, pt, pf, a, imm } => write!(f, "cmpi.{kind} {pt}, {pf} = {a}, {imm}"),
            Ld { d, base, off, size, signed } => {
                let s = if signed { "s" } else { "" };
                write!(f, "ld{}{s} {d} = [{base} + {off}]", size.bytes())
            }
            St { src, base, off, size } => {
                write!(f, "st{} [{base} + {off}] = {src}", size.bytes())
            }
            LdF { d, base, off } => write!(f, "ldf {d} = [{base} + {off}]"),
            StF { src, base, off } => write!(f, "stf [{base} + {off}] = {src}"),
            FAdd { d, a, b } => write!(f, "fadd {d} = {a}, {b}"),
            FSub { d, a, b } => write!(f, "fsub {d} = {a}, {b}"),
            FMul { d, a, b } => write!(f, "fmul {d} = {a}, {b}"),
            FDiv { d, a, b } => write!(f, "fdiv {d} = {a}, {b}"),
            FMov { d, a } => write!(f, "fmov {d} = {a}"),
            FMovI { d, imm } => write!(f, "fmovi {d} = {imm}"),
            ICvtF { d, a } => write!(f, "icvtf {d} = {a}"),
            FCvtI { d, a } => write!(f, "fcvti {d} = {a}"),
            FCmp { kind, pt, pf, a, b } => write!(f, "fcmp.{kind} {pt}, {pf} = {a}, {b}"),
            Br { target } => write!(f, "br {target}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> IntReg {
        IntReg::n(i)
    }

    #[test]
    fn cmp_kind_signed_vs_unsigned() {
        let neg1 = u64::MAX;
        assert!(CmpKind::Lt.eval_int(neg1, 0)); // -1 < 0 signed
        assert!(!CmpKind::Ltu.eval_int(neg1, 0)); // max > 0 unsigned
        assert!(CmpKind::Geu.eval_int(neg1, 0));
        assert!(CmpKind::Ge.eval_int(0, neg1));
    }

    #[test]
    fn cmp_kind_fp_nan_is_unordered() {
        assert!(!CmpKind::Eq.eval_fp(f64::NAN, f64::NAN));
        assert!(CmpKind::Ne.eval_fp(f64::NAN, 1.0));
        assert!(!CmpKind::Lt.eval_fp(f64::NAN, 1.0));
    }

    #[test]
    fn sources_and_dests_of_three_operand_alu() {
        let op = Opcode::Add { d: r(1), a: r(2), b: r(3) };
        let srcs: Vec<_> = op.sources().into_iter().collect();
        assert_eq!(srcs, vec![RegId::Int(r(2)), RegId::Int(r(3))]);
        let dests: Vec<_> = op.dests().into_iter().collect();
        assert_eq!(dests, vec![RegId::Int(r(1))]);
    }

    #[test]
    fn cmp_writes_two_predicates() {
        let op = Opcode::CmpI {
            kind: CmpKind::Eq,
            pt: PredReg::n(1),
            pf: PredReg::n(2),
            a: r(4),
            imm: 0,
        };
        assert_eq!(op.dests().len(), 2);
        assert!(op.dests().contains(RegId::Pred(PredReg::n(1))));
        assert!(op.dests().contains(RegId::Pred(PredReg::n(2))));
    }

    #[test]
    fn store_reads_data_and_base() {
        let op = Opcode::St { src: r(5), base: r(6), off: 8, size: MemSize::B8 };
        assert_eq!(op.sources().len(), 2);
        assert!(op.dests().is_empty());
        assert!(op.is_store());
        assert!(!op.is_load());
        assert_eq!(op.fu_class(), FuClass::Mem);
    }

    #[test]
    fn fu_and_latency_classes() {
        assert_eq!(Opcode::Nop.fu_class(), FuClass::Alu);
        assert_eq!(
            Opcode::FDiv { d: FpReg::n(1), a: FpReg::n(2), b: FpReg::n(3) }.latency_class(),
            LatencyClass::FpDiv
        );
        assert_eq!(Opcode::Br { target: 0 }.fu_class(), FuClass::Branch);
        assert_eq!(Opcode::Mul { d: r(1), a: r(1), b: r(1) }.latency_class(), LatencyClass::Mul);
        assert_eq!(
            Opcode::Ld { d: r(1), base: r(2), off: 0, size: MemSize::B8, signed: false }
                .latency_class(),
            LatencyClass::Load
        );
    }

    #[test]
    fn display_formats_assembly_like() {
        let op = Opcode::Ld { d: r(4), base: r(2), off: 16, size: MemSize::B4, signed: false };
        assert_eq!(op.to_string(), "ld4 r4 = [r2 + 16]");
        let br = Opcode::Br { target: 12 };
        assert_eq!(br.to_string(), "br 12");
    }

    #[test]
    fn reg_list_capacity_handles_max_operands() {
        let mut l = RegList::default();
        l.push(r(0));
        l.push(r(1));
        l.push(r(2));
        l.push(r(3));
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
    }
}
