//! # ff-isa — EPIC-style ISA substrate
//!
//! The instruction-set substrate for the flea-flicker two-pass pipelining
//! reproduction (Barnes et al., MICRO 2003). The paper evaluates its
//! microarchitecture on an Itanium-like EPIC machine; this crate provides
//! the equivalent medium from scratch:
//!
//! * three 64-entry register files (integer, FP, predicate) — [`reg`]
//! * a predicated, wide-word operation set with explicit issue groups
//!   delimited by stop bits — [`op`], [`insn`]
//! * validated programs and an assembler-style builder — [`program`],
//!   [`builder`]
//! * sparse byte-addressable data memory — [`mem_image`]
//! * shared functional semantics and a golden-model interpreter —
//!   [`semantics`], [`interp`]
//!
//! The defining EPIC property modeled here: **the program encoding is the
//! schedule**. Stop bits partition the instruction stream into issue
//! groups; an in-order machine stalls whole groups when any member's
//! operands are not ready. The two-pass microarchitecture (in `ff-core`)
//! exists to absorb exactly those stalls.
//!
//! # Examples
//!
//! Build and run a small program on the golden interpreter:
//!
//! ```
//! use ff_isa::{ArchState, MemoryImage, ProgramBuilder};
//! use ff_isa::reg::IntReg;
//!
//! let mut b = ProgramBuilder::new();
//! b.movi(IntReg::n(1), 20);
//! b.stop();
//! b.addi(IntReg::n(2), IntReg::n(1), 22);
//! b.stop();
//! b.halt();
//! let program = b.build()?;
//!
//! let mut state = ArchState::new(&program, MemoryImage::new());
//! state.run(100);
//! assert_eq!(state.int(IntReg::n(2)), 42);
//! # Ok::<(), ff_isa::BuildProgramError>(())
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod builder;
pub mod insn;
pub mod interp;
pub mod mem_image;
pub mod op;
pub mod program;
pub mod reg;
pub mod semantics;

pub use asm::{parse_program, ParseAsmError};
pub use builder::{BuildProgramError, Label, ProgramBuilder};
pub use insn::{InsnFacts, Instruction};
pub use interp::{ArchState, RunSummary, StopReason};
pub use mem_image::MemoryImage;
pub use op::{CmpKind, FuClass, LatencyClass, MemSize, Opcode, RegList};
pub use program::{check_group_hazards, GroupHazard, Program, ValidateProgramError};
pub use reg::{FpReg, IntReg, InvalidRegError, PredReg, RegId, REGS_PER_FILE, TOTAL_REGS};
pub use semantics::{evaluate, load_write, Effect, RegRead, RegWrite, Writes};
