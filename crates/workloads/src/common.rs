//! Shared helpers for kernel construction.

use ff_isa::MemoryImage;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic xorshift64* PRNG used to initialise kernel data so runs
/// are reproducible without threading `rand` through every kernel.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a PRNG; a zero seed is remapped to a fixed constant.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` (bound > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Builds a shuffled circular pointer chain in memory: `count` nodes of
/// `stride` bytes starting at `base`; each node's first 8 bytes point to
/// the next node in a random permutation cycle. Returns the address of
/// the first node of the cycle.
///
/// Shuffling defeats spatial locality, making every hop a fresh line —
/// the classic pointer-chase microbenchmark layout.
pub fn shuffled_chain(mem: &mut MemoryImage, base: u64, count: u64, stride: u64, seed: u64) -> u64 {
    assert!(count > 0);
    let mut order: Vec<u64> = (0..count).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    for w in 0..count {
        let this = base + order[w as usize] * stride;
        let next = base + order[((w + 1) % count) as usize] * stride;
        mem.write_u64(this, next);
    }
    base + order[0] * stride
}

/// Fills `count` 8-byte words starting at `base` with PRNG data.
pub fn fill_random_words(mem: &mut MemoryImage, base: u64, count: u64, seed: u64) {
    let mut rng = XorShift64::new(seed);
    for i in 0..count {
        mem.write_u64(base + i * 8, rng.next_u64());
    }
}

/// Fills `count` doubles starting at `base` with values in (-1, 1).
pub fn fill_random_f64(mem: &mut MemoryImage, base: u64, count: u64, seed: u64) {
    let mut rng = XorShift64::new(seed);
    for i in 0..count {
        let v = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        mem.write_f64(base + i * 8, 2.0 * v - 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            assert_ne!(x, 0);
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed remapped");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn shuffled_chain_visits_every_node_once() {
        let mut mem = MemoryImage::new();
        let base = 0x10000;
        let (count, stride) = (64u64, 128u64);
        let start = shuffled_chain(&mut mem, base, count, stride, 1);
        let mut seen = std::collections::HashSet::new();
        let mut at = start;
        for _ in 0..count {
            assert!(seen.insert(at), "revisited {at:#x} before cycle end");
            assert!(at >= base && at < base + count * stride);
            assert_eq!((at - base) % stride, 0);
            at = mem.read_u64(at);
        }
        assert_eq!(at, start, "chain must be a single cycle");
    }

    #[test]
    fn fillers_write_expected_ranges() {
        let mut mem = MemoryImage::new();
        fill_random_words(&mut mem, 0x1000, 4, 3);
        assert_ne!(mem.read_u64(0x1000), 0);
        fill_random_f64(&mut mem, 0x2000, 4, 3);
        let v = mem.read_f64(0x2008);
        assert!((-1.0..1.0).contains(&v));
    }
}
