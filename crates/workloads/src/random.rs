//! Bounded random-program generation for differential testing.
//!
//! [`random_program`] produces arbitrary-looking but *structurally
//! disciplined* programs: counted loops (guaranteed termination), memory
//! accesses confined to a pre-filled arena (addresses are always
//! re-masked into range), EPIC-legal issue groups (no intra-group RAW or
//! WAW), and forward data-dependent branches. The cross-engine property
//! tests run thousands of these through the golden interpreter, the
//! baseline pipeline, and the two-pass pipeline, and demand bit-identical
//! architectural results.

use crate::common::fill_random_words;
use ff_isa::reg::{FpReg, IntReg, PredReg};
use ff_isa::{CmpKind, FuClass, MemoryImage, Opcode, Program, ProgramBuilder, RegId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Arena the generated memory ops stay inside.
const ARENA_BASE: u64 = 0x2000_0000;
/// Arena size in bytes (64 KB).
const ARENA_SIZE: u64 = 0x1_0000;
/// Pointer mask: 32-byte-aligned offsets so that even the widest access
/// (`+24` word offset, 8-byte size) stays strictly inside the arena —
/// every 8-aligned word is still reachable via the 0/8/16/24 offsets.
const PTR_MASK: i64 = 0xFFE0;

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Top-level segments (straight-line blocks, loops, diamonds).
    pub segments: usize,
    /// Maximum operations per straight-line block.
    pub block_ops: usize,
    /// Maximum loop trip count.
    pub max_trips: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig { segments: 8, block_ops: 10, max_trips: 12 }
    }
}

/// Register pools: work registers the generator is allowed to touch.
const WORK: [u8; 12] = [10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21];
const FWORK: [u8; 6] = [1, 2, 3, 4, 5, 6];
const PWORK: [u8; 4] = [1, 2, 3, 4];
/// Dedicated pointer scratch and base registers.
const PTR: u8 = 40;
const TMP: u8 = 41;
const BASE: u8 = 42;
/// Loop counters (one per loop depth; loops are not nested here).
const COUNTER: u8 = 50;

#[derive(Debug)]
struct Gen {
    rng: StdRng,
    b: ProgramBuilder,
    /// Destinations written in the currently open issue group.
    group_dests: Vec<RegId>,
    /// Instructions in the currently open issue group.
    group_len: usize,
    /// FU-class occupancy of the currently open issue group, indexed by
    /// [`fu_index`].
    group_fu: [usize; 4],
    /// PWORK predicates some compare has defined so far (bit per pool
    /// slot): only these may qualify later instructions, so generated
    /// programs never read a power-on predicate.
    defined_preds: u8,
}

/// Groups never exceed this many instructions (the machine is 8-issue;
/// oversized groups would only test the engines' split paths, which the
/// unit suites cover directly).
const MAX_GROUP: usize = 6;

/// Per-class FU slots of the paper's Table 1 machine (ALU, memory, FP,
/// branch); groups stay within them so every generated group can issue
/// in a single cycle.
const FU_SLOTS: [usize; 4] = [5, 3, 3, 3];

fn fu_index(class: FuClass) -> usize {
    match class {
        FuClass::Alu => 0,
        FuClass::Mem => 1,
        FuClass::Fp => 2,
        FuClass::Branch => 3,
    }
}

impl Gen {
    fn r(&mut self) -> IntReg {
        IntReg::n(WORK[self.rng.gen_range(0..WORK.len())])
    }

    fn f(&mut self) -> FpReg {
        FpReg::n(FWORK[self.rng.gen_range(0..FWORK.len())])
    }

    fn p(&mut self) -> PredReg {
        PredReg::n(PWORK[self.rng.gen_range(0..PWORK.len())])
    }

    /// Marks a predicate as compare-defined (no-op outside PWORK).
    fn note_pred_defined(&mut self, p: PredReg) {
        if let Some(i) = PWORK.iter().position(|&w| PredReg::n(w) == p) {
            self.defined_preds |= 1 << i;
        }
    }

    /// A uniformly random *defined* PWORK predicate, if any compare has
    /// established one yet.
    fn defined_p(&mut self) -> Option<PredReg> {
        let n = self.defined_preds.count_ones();
        if n == 0 {
            return None;
        }
        let k = self.rng.gen_range(0..n);
        let mut seen = 0;
        for (i, &p) in PWORK.iter().enumerate() {
            if self.defined_preds & (1 << i) != 0 {
                if seen == k {
                    return Some(PredReg::n(p));
                }
                seen += 1;
            }
        }
        None
    }

    /// Pushes `op` (optionally predicated), inserting a stop first if it
    /// would create an intra-group RAW/WAW hazard or exceed the group's
    /// per-class FU slots.
    fn emit(&mut self, op: Opcode, qp: Option<PredReg>) {
        let mut insn = ff_isa::Instruction::new(op);
        insn.qp = qp;
        let hazard = insn
            .sources()
            .into_iter()
            .chain(insn.dests())
            .any(|reg| self.group_dests.contains(&reg));
        let fu = fu_index(op.fu_class());
        if hazard || self.group_len >= MAX_GROUP || self.group_fu[fu] >= FU_SLOTS[fu] {
            self.close_group();
        }
        for d in insn.dests() {
            self.group_dests.push(d);
        }
        if let Some(qp) = qp {
            self.b.with_pred(qp);
        }
        self.b.push(op);
        self.group_len += 1;
        self.group_fu[fu] += 1;
        // Occasionally end the group anyway, for variety.
        if self.rng.gen_bool(0.4) {
            self.close_group();
        }
    }

    fn close_group(&mut self) {
        self.b.stop();
        self.group_dests.clear();
        self.group_len = 0;
        self.group_fu = [0; 4];
    }

    /// One random non-memory, non-control operation.
    fn random_alu(&mut self) -> Opcode {
        let (d, a, b2) = (self.r(), self.r(), self.r());
        let (fd, fa, fb) = (self.f(), self.f(), self.f());
        let imm = self.rng.gen_range(-100..100i64);
        match self.rng.gen_range(0..12) {
            0 => Opcode::Add { d, a, b: b2 },
            1 => Opcode::AddI { d, a, imm },
            2 => Opcode::Sub { d, a, b: b2 },
            3 => Opcode::And { d, a, b: b2 },
            4 => Opcode::Or { d, a, b: b2 },
            5 => Opcode::Xor { d, a, b: b2 },
            6 => Opcode::ShlI { d, a, sh: self.rng.gen_range(0..8) },
            7 => Opcode::ShrI { d, a, sh: self.rng.gen_range(0..8) },
            8 => Opcode::Mul { d, a, b: b2 },
            9 => Opcode::MovI { d, imm },
            10 => Opcode::FAdd { d: fd, a: fa, b: fb },
            _ => Opcode::FMul { d: fd, a: fa, b: fb },
        }
    }

    /// Emits an in-arena pointer computation into `PTR` from a random
    /// work register, then returns the pointer register.
    fn emit_pointer(&mut self) -> IntReg {
        let src = self.r();
        self.emit(Opcode::AndI { d: IntReg::n(TMP), a: src, imm: PTR_MASK }, None);
        self.emit(Opcode::Add { d: IntReg::n(PTR), a: IntReg::n(BASE), b: IntReg::n(TMP) }, None);
        IntReg::n(PTR)
    }

    fn emit_block(&mut self, max_ops: usize) {
        let n = self.rng.gen_range(1..=max_ops);
        for _ in 0..n {
            match self.rng.gen_range(0..10) {
                // Memory ops: always through a freshly masked pointer.
                0 | 1 => {
                    let ptr = self.emit_pointer();
                    let d = self.r();
                    let off = 8 * self.rng.gen_range(0..4i64);
                    self.emit(
                        Opcode::Ld { d, base: ptr, off, size: ff_isa::MemSize::B8, signed: false },
                        None,
                    );
                }
                2 => {
                    let ptr = self.emit_pointer();
                    let src = self.r();
                    let off = 8 * self.rng.gen_range(0..4i64);
                    self.emit(Opcode::St { src, base: ptr, off, size: ff_isa::MemSize::B8 }, None);
                }
                // Compares establish predicates...
                3 => {
                    let (pt, pf) = (self.p(), self.p());
                    let (a, imm) = (self.r(), self.rng.gen_range(-50..50i64));
                    if pt != pf {
                        self.emit(Opcode::CmpI { kind: CmpKind::Lt, pt, pf, a, imm }, None);
                        self.note_pred_defined(pt);
                        self.note_pred_defined(pf);
                    }
                }
                // ...and predicated ALU ops consume them (only ones some
                // compare defined: a power-on predicate reads false and
                // would silently nullify the instruction forever).
                4 => {
                    let qp = self.defined_p();
                    let op = self.random_alu();
                    self.emit(op, qp);
                }
                _ => {
                    let op = self.random_alu();
                    self.emit(op, None);
                }
            }
        }
        self.close_group();
    }

    /// A counted loop around a random block.
    fn emit_loop(&mut self, cfg: &GeneratorConfig) {
        let trips = self.rng.gen_range(1..=cfg.max_trips) as i64;
        let c = IntReg::n(COUNTER);
        self.emit(Opcode::MovI { d: c, imm: 0 }, None);
        self.close_group();
        let top = self.b.here();
        self.emit_block(cfg.block_ops.min(5));
        self.emit(Opcode::AddI { d: c, a: c, imm: 1 }, None);
        self.close_group();
        let (pt, pf) = (PredReg::n(7), PredReg::n(8));
        self.emit(Opcode::CmpI { kind: CmpKind::Lt, pt, pf, a: c, imm: trips }, None);
        self.close_group();
        self.b.br_cond(pt, top);
        self.close_group();
    }

    /// A data-dependent forward branch over a small block (a diamond
    /// without the else side).
    fn emit_diamond(&mut self, cfg: &GeneratorConfig) {
        let (pt, pf) = (PredReg::n(5), PredReg::n(6));
        let a = self.r();
        let imm = self.rng.gen_range(0..4);
        self.emit(Opcode::CmpI { kind: CmpKind::Eq, pt, pf, a, imm }, None);
        self.close_group();
        let skip = self.b.new_label();
        self.b.br_cond(pt, skip);
        self.close_group();
        self.emit_block(cfg.block_ops.min(4));
        self.b.bind(skip);
        self.group_dests.clear();
    }
}

/// Generates a random, terminating, arena-confined program plus its
/// initial memory.
///
/// The same `seed` always yields the same program.
#[must_use]
pub fn random_program(seed: u64, cfg: &GeneratorConfig) -> (Program, MemoryImage) {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        b: ProgramBuilder::new(),
        group_dests: Vec::new(),
        group_len: 0,
        group_fu: [0; 4],
        defined_preds: 0,
    };

    // Prologue: arena base plus seeded work registers, chunked to the
    // machine's per-class FU slots so every group issues in one cycle.
    g.b.movi(IntReg::n(BASE), ARENA_BASE as i64);
    g.b.stop();
    for (i, &w) in WORK.iter().enumerate() {
        if i > 0 && i % FU_SLOTS[fu_index(FuClass::Alu)] == 0 {
            g.b.stop();
        }
        let v = g.rng.gen_range(-1000..1000i64) * (i as i64 + 1);
        g.b.movi(IntReg::n(w), v);
    }
    g.b.stop();
    for (i, &fw) in FWORK.iter().enumerate() {
        if i > 0 && i % FU_SLOTS[fu_index(FuClass::Fp)] == 0 {
            g.b.stop();
        }
        let v = f64::from(g.rng.gen_range(-100..100i32)) / 8.0;
        g.b.fmovi(FpReg::n(fw), v);
    }
    g.b.stop();

    let segments = g.rng.gen_range(1..=cfg.segments);
    for _ in 0..segments {
        match g.rng.gen_range(0..4) {
            0 => g.emit_loop(cfg),
            1 => g.emit_diamond(cfg),
            _ => g.emit_block(cfg.block_ops),
        }
    }
    g.close_group();
    g.b.halt();
    let program = g.b.build().expect("generated program is structurally valid");

    let mut memory = MemoryImage::new();
    fill_random_words(&mut memory, ARENA_BASE, ARENA_SIZE / 8, seed ^ 0xA5A5);
    (program, memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{check_group_hazards, ArchState};

    #[test]
    fn generated_programs_are_valid_and_halt() {
        let cfg = GeneratorConfig::default();
        for seed in 0..50 {
            let (program, mem) = random_program(seed, &cfg);
            check_group_hazards(&program).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{program}"));
            let mut interp = ArchState::new(&program, mem);
            interp.run(2_000_000);
            assert!(interp.is_halted(), "seed {seed} did not halt");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let (p1, m1) = random_program(7, &cfg);
        let (p2, m2) = random_program(7, &cfg);
        assert_eq!(p1, p2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig::default();
        let (p1, _) = random_program(1, &cfg);
        let (p2, _) = random_program(2, &cfg);
        assert_ne!(p1, p2);
    }

    #[test]
    fn memory_stays_in_arena() {
        // Interpreter-level check: run and confirm no writes landed
        // outside the arena pages (reads of unmapped return 0 and do not
        // allocate, so resident pages witness the write set).
        let cfg = GeneratorConfig::default();
        for seed in 0..20 {
            let (program, mem) = random_program(seed, &cfg);
            let before = mem.resident_pages();
            let mut interp = ArchState::new(&program, mem);
            interp.run(2_000_000);
            // Arena is 64 KB = 16 pages; allow the arena itself only.
            assert!(
                interp.mem().resident_pages() <= before.max(16),
                "seed {seed} wrote outside the arena"
            );
        }
    }
}
