//! `parser_like` — 197.parser: mixed dictionary traffic.
//!
//! The link-grammar parser mixes hash-style dictionary probes with short
//! linked-structure walks and moderately predictable control flow. The
//! kernel interleaves a randomly-indexed probe into a 512 KB dictionary
//! (L2/L3 latency), a two-hop chain from the probed entry, and a
//! biased — and hence mostly predictable — branch.

use crate::common::{fill_random_words, XorShift64};
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const DICT_BASE: u64 = 0x0E00_0000;
const DICT_WORDS: u64 = 8_192; // 64 KB
const INDEX_MASK: i64 = (DICT_WORDS as i64 - 1) << 3;
const NODE_BASE: u64 = 0x0E80_0000;
const NODE_STRIDE: u64 = 64;
const NODE_COUNT: u64 = 2_048; // 128 KB of nodes

/// Builds the parser-like kernel with `iters` dictionary probes.
#[must_use]
pub fn parser_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (dict, cnt, state, t1, off, slot, entry, node, word, matches) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9), r(10));

    let mut b = ProgramBuilder::new();
    b.movi(dict, DICT_BASE as i64);
    b.movi(cnt, 0);
    b.movi(state, 0x197_197_197_197u64 as i64);
    b.movi(matches, 0);
    b.stop();
    let top = b.here();
    b.shli(t1, state, 13);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.shri(t1, state, 7);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.andi(off, state, INDEX_MASK);
    b.stop();
    b.add(slot, dict, off);
    b.stop();
    // Probe: the dictionary entry holds a pointer to a connector node.
    b.ld8(entry, slot, 0);
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    // Two-hop connector walk (dependent short chain).
    b.ld8(node, entry, 0);
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.ld8(word, node, 8);
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    // Biased branch: connector matches ~ 7/8 of the time.
    b.andi(t1, word, 7);
    b.stop();
    b.cmpi(CmpKind::Eq, p(3), p(4), t1, 0);
    b.stop();
    let nomatch = b.new_label();
    b.br_cond(p(3), nomatch);
    b.stop();
    b.addi(matches, matches, 1);
    b.stop();
    b.bind(nomatch);
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("parser kernel is well-formed");

    let mut memory = MemoryImage::new();
    let mut rng = XorShift64::new(0x197);
    // Dictionary entries point into the node region.
    for i in 0..DICT_WORDS {
        let node = NODE_BASE + rng.below(NODE_COUNT) * NODE_STRIDE;
        memory.write_u64(DICT_BASE + i * 8, node);
    }
    // Node next-pointers and payload words.
    for i in 0..NODE_COUNT {
        let this = NODE_BASE + i * NODE_STRIDE;
        let next = NODE_BASE + rng.below(NODE_COUNT) * NODE_STRIDE;
        memory.write_u64(this, next);
        memory.write_u64(this + 8, rng.next_u64());
    }
    fill_random_words(&mut memory, NODE_BASE + NODE_COUNT * NODE_STRIDE, 8, 0x197);

    Workload {
        name: "parser-like",
        spec_ref: "197.parser",
        description: "dictionary probes plus short connector chains and biased branches",
        program,
        memory,
        budget: 30 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&parser_like(40));
    }
}
