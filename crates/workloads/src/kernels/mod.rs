//! The ten Table 2 benchmark kernels.
//!
//! Each submodule builds one hand-scheduled synthetic kernel named for
//! the SPEC benchmark whose memory/branch character it reproduces. All
//! kernels observe the EPIC schedule discipline (no intra-group
//! dependences; load consumers ≥ 2 groups downstream) and are validated
//! by [`ff_isa::check_group_hazards`] in their tests.

mod compress;
mod equake;
mod gap;
mod go;
mod li;
mod mcf;
mod parser;
mod twolf;
mod vortex;
mod vpr;

pub use compress::compress_like;
pub use equake::equake_like;
pub use gap::gap_like;
pub use go::go_like;
pub use li::li_like;
pub use mcf::mcf_like;
pub use parser::parser_like;
pub use twolf::twolf_like;
pub use vortex::vortex_like;
pub use vpr::vpr_like;

#[cfg(test)]
pub(crate) mod testutil {
    use crate::Workload;
    use ff_isa::{check_group_hazards, ArchState};

    /// Every kernel must pass the schedule lint, halt within its budget
    /// on the golden interpreter, and touch memory.
    pub fn check_kernel(w: &Workload) {
        check_group_hazards(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut interp = ArchState::new(&w.program, w.memory.clone());
        let summary = interp.run(w.budget * 4);
        assert!(interp.is_halted(), "{} did not halt within 4x budget", w.name);
        assert!(
            summary.instrs <= w.budget,
            "{}: budget {} too small for {} dynamic instructions",
            w.name,
            w.budget,
            summary.instrs
        );
        assert!(
            summary.instrs * 3 > w.budget,
            "{}: budget {} is overly loose for {} instructions",
            w.name,
            w.budget,
            summary.instrs
        );
    }
}
