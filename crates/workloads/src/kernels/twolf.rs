//! `twolf_like` — 300.twolf: misses feeding branch conditions.
//!
//! In the placement/routing code of 300.twolf, loaded values decide
//! branches almost immediately. On the two-pass machine those branches
//! defer with their conditions and resolve at B-DET, lengthening the
//! effective misprediction pipeline — the paper observes twolf's memory
//! -stall reduction being "offset by an increase in additional cycles
//! stalled in the front end" for exactly this reason.

use crate::common::fill_random_words;
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const GRID_BASE: u64 = 0x0D00_0000;
const GRID_WORDS: u64 = 8_192; // 64 KB: L1 misses to L2 still defer the branch compare
const PARAM_ADDR: u64 = 0x0CF0_0000;
const INDEX_MASK: i64 = (GRID_WORDS as i64 - 1) << 3;

/// Builds the twolf-like kernel with `iters` cost evaluations.
#[must_use]
pub fn twolf_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (base, cnt, state, t1, off, slot, cost, gain, bits) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));
    let (param, bias) = (r(10), r(11));

    let mut b = ProgramBuilder::new();
    b.movi(base, GRID_BASE as i64);
    b.movi(cnt, 0);
    b.movi(state, 0x3007_001F_5EED_u64 as i64);
    b.movi(gain, 0);
    b.movi(param, PARAM_ADDR as i64);
    b.stop();
    // Deferred-produced loop-invariant annealing bias (Figure 8 subject).
    b.ld8(bias, param, 0);
    b.stop();
    b.addi(bias, bias, 3);
    b.stop();
    let top = b.here();
    b.shli(t1, state, 11);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.shri(t1, state, 5);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.andi(off, state, INDEX_MASK);
    b.stop();
    b.add(slot, base, off);
    b.stop();
    // The cost load misses L1 (often L2 too)...
    b.ld8(cost, slot, 0);
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    // Bias probe: defers only while `bias` awaits B->A feedback (Fig. 8).
    b.add(r(12), bias, state);
    b.stop();
    // ...and its value immediately decides an unpredictable branch: the
    // branch's compare consumes the load with minimal slack, so the
    // branch defers to B-DET whenever the load misses.
    b.andi(bits, cost, 1);
    b.stop();
    b.cmpi(CmpKind::Eq, p(3), p(4), bits, 1);
    b.stop();
    let reject = b.new_label();
    b.br_cond(p(3), reject);
    b.stop();
    // Accepted move: apply the biased gain.
    b.shri(t1, cost, 3);
    b.stop();
    b.andi(t1, t1, 0xFF);
    b.stop();
    b.add(t1, t1, bias);
    b.stop();
    b.add(gain, gain, t1);
    b.stop();
    b.bind(reject);
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("twolf kernel is well-formed");

    let mut memory = MemoryImage::new();
    memory.write_u64(PARAM_ADDR, 7);
    fill_random_words(&mut memory, GRID_BASE, GRID_WORDS, 0x300);

    Workload {
        name: "twolf-like",
        spec_ref: "300.twolf",
        description: "misses feeding unpredictable branches: B-DET resolution pressure",
        program,
        memory,
        budget: 24 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&twolf_like(40));
    }
}
