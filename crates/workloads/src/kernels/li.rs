//! `li_like` — 130.li: L2-resident cons-cell chains.
//!
//! The Lisp interpreter's working set is list cells scattered through a
//! heap that outgrows the L1 but sits in the L2: walking a list is a
//! dependent chain of short (5-cycle) misses with a little per-cell work
//! (type checks, car processing). Two-pass pipelining hides the car
//! processing under the next-pointer hops and overlaps hops with the
//! predicated bookkeeping.

use crate::common::{shuffled_chain, XorShift64};
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const HEAP_BASE: u64 = 0x0B00_0000;
const CELL_STRIDE: u64 = 32;
const CELL_COUNT: u64 = 1_024; // 32 KB heap: misses L1, lives in L2

/// Builds the li-like list-walk kernel visiting `iters` cells.
#[must_use]
pub fn li_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (cell, cnt, car, acc, odd_cnt, tag) = (r(1), r(2), r(10), r(11), r(12), r(13));

    let mut memory = MemoryImage::new();
    let start = shuffled_chain(&mut memory, HEAP_BASE, CELL_COUNT, CELL_STRIDE, 0x130);
    let mut rng = XorShift64::new(0x130);
    for i in 0..CELL_COUNT {
        memory.write_u64(HEAP_BASE + i * CELL_STRIDE + 8, rng.next_u64());
    }

    let mut b = ProgramBuilder::new();
    b.movi(cell, start as i64);
    b.movi(cnt, 0);
    b.movi(acc, 0);
    b.movi(odd_cnt, 0);
    b.stop();
    let top = b.here();
    // Group 1: load the car (payload).
    b.ld8(car, cell, 8);
    b.stop();
    // Group 2: follow the cdr — the dependent L2-latency hop.
    b.ld8(cell, cell, 0);
    b.stop();
    // Group 3: counter (pads car's load-use distance).
    b.addi(cnt, cnt, 1);
    b.stop();
    // Groups 4-6: car processing — type tag test plus predicated count
    // (lisp's fixnum/pointer discrimination).
    b.andi(tag, car, 1);
    b.stop();
    b.add(acc, acc, car);
    b.stop();
    b.cmpi(CmpKind::Eq, p(3), p(4), tag, 1);
    b.stop();
    b.with_pred(p(3));
    b.addi(odd_cnt, odd_cnt, 1);
    b.stop();
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("li kernel is well-formed");

    Workload {
        name: "li-like",
        spec_ref: "130.li",
        description: "L2-resident cons-cell walk: dependent short misses with per-cell work",
        program,
        memory,
        budget: 14 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&li_like(40));
    }

    #[test]
    fn heap_fits_l2_but_not_l1() {
        let bytes = CELL_COUNT * CELL_STRIDE;
        assert!(bytes > 16 * 1024 && bytes < 256 * 1024);
    }
}
