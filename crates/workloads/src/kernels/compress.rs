//! `compress_like` — 129.compress: ubiquitous short misses.
//!
//! 129.compress hammers a hash table larger than the L1 but resident in
//! the L2, so most probes take the 5-cycle L2 path — precisely the
//! "short, diffuse stalls due to difficult-to-anticipate first- or
//! second-level misses" the paper targets. The paper attributes
//! compress's gain to "the absorption of latencies from short but
//! ubiquitous misses". The kernel mixes PRNG key generation (ALU-heavy,
//! like compress's bit twiddling) with randomly indexed table
//! read-modify-writes over a 128 KB table.

use crate::common::fill_random_words;
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const TABLE_BASE: u64 = 0x0A00_0000;
const TABLE_WORDS: u64 = 4_096; // 32 KB: misses L1 often, always hits L2
const INDEX_MASK: i64 = (TABLE_WORDS as i64 - 1) << 3;

/// Builds the compress-like hash-update kernel with `iters` probes.
#[must_use]
pub fn compress_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (base, cnt, state, t1, off, slot, val, mixed) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8));

    let mut b = ProgramBuilder::new();
    b.movi(base, TABLE_BASE as i64);
    b.movi(cnt, 0);
    b.movi(state, 0x9E37_79B9_7F4A_7C15u64 as i64);
    b.stop();
    let top = b.here();
    // PRNG advance (xorshift), standing in for compress's code table
    // arithmetic: four dependent single-cycle ALU groups.
    b.shli(t1, state, 13);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.shri(t1, state, 7);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    // Index into the table: mask to an 8-byte-aligned offset.
    b.andi(off, state, INDEX_MASK);
    b.stop();
    b.add(slot, base, off);
    b.stop();
    // Probe two groups before use.
    b.ld8(val, slot, 0);
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    // Mix and write back (read-modify-write, like table updates).
    b.xor(mixed, val, state);
    b.stop();
    b.nop();
    b.stop();
    b.st8(mixed, slot, 0);
    b.stop();
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("compress kernel is well-formed");

    let mut memory = MemoryImage::new();
    fill_random_words(&mut memory, TABLE_BASE, TABLE_WORDS, 0x129);

    Workload {
        name: "compress-like",
        spec_ref: "129.compress",
        description: "L2-resident hash table updates: short ubiquitous L1 misses",
        program,
        memory,
        budget: 18 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&compress_like(50));
    }

    #[test]
    fn table_fits_l2_but_not_l1() {
        let bytes = TABLE_WORDS * 8;
        assert!(bytes > 16 * 1024);
        assert!(bytes < 256 * 1024);
    }
}
