//! `vortex_like` — 255.vortex: object field read-modify-write traffic.
//!
//! The OO database spends its time fetching objects and rewriting their
//! fields. The kernel picks pseudo-random 64-byte objects from a 512 KB
//! store, reads two fields, rewrites them, and occasionally writes a
//! field whose data hangs off a fresh load — a deferred store that
//! younger pre-executed loads must speculate past (exercising the ALAT
//! path with a realistic, mostly-conflict-free mix).

use crate::common::fill_random_words;
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const STORE_BASE: u64 = 0x0F00_0000;
const OBJ_STRIDE: u64 = 64;
const OBJ_COUNT: u64 = 1_024; // 64 KB: steady-state L1/L2 object store
const INDEX_MASK: i64 = (OBJ_COUNT as i64 - 1) << 6;

/// Builds the vortex-like kernel with `iters` object transactions.
#[must_use]
pub fn vortex_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (base, cnt, state, t1, off, obj, f0, f1, sum, stamp) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9), r(10));

    let mut b = ProgramBuilder::new();
    b.movi(base, STORE_BASE as i64);
    b.movi(cnt, 0);
    b.movi(state, 0x255_255_255u64 as i64);
    b.stop();
    let top = b.here();
    b.shli(t1, state, 13);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.shri(t1, state, 7);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.andi(off, state, INDEX_MASK);
    b.stop();
    b.add(obj, base, off);
    b.stop();
    // Fetch two object fields.
    b.ld8(f0, obj, 0);
    b.ld8(f1, obj, 8);
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    // Transaction: combine and version-stamp the object.
    b.add(sum, f0, f1);
    b.stop();
    b.xor(stamp, f1, state);
    b.stop();
    // Write-back: sum depends on the loads (deferred store when the
    // object missed); the stamp store usually follows it into the queue.
    b.st8(sum, obj, 0);
    b.st8(stamp, obj, 8);
    b.stop();
    // A younger read of a *different* object field pre-executes past
    // those (possibly deferred) stores — the paper's "risky" loads. Its
    // result feeds an accumulator, NOT the index chain: the next object
    // pick must stay independent so the A-pipe can run ahead.
    b.ld8(t1, obj, 16);
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.add(r(11), r(11), t1);
    b.stop();
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("vortex kernel is well-formed");

    let mut memory = MemoryImage::new();
    fill_random_words(&mut memory, STORE_BASE, OBJ_COUNT * OBJ_STRIDE / 8, 0x255);

    Workload {
        name: "vortex-like",
        spec_ref: "255.vortex",
        description: "object read-modify-write traffic with deferred stores and risky loads",
        program,
        memory,
        budget: 26 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&vortex_like(40));
    }
}
