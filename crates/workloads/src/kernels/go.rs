//! `go_like` — 099.go: branchy integer code.
//!
//! The go-playing program is dominated by integer position evaluation:
//! modest memory footprint, heavy control flow whose directions are
//! data-dependent and poorly predictable. Two-pass pipelining gains a
//! little from hiding the L1/L2 misses, but mispredictions — some of
//! them resolved late in the B-pipe when the condition hangs off a
//! miss — cap the benefit.

use crate::common::fill_random_words;
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const BOARD_BASE: u64 = 0x0C00_0000;
const BOARD_WORDS: u64 = 4_096; // 32 KB: steady-state L1/L2 mix
const INDEX_MASK: i64 = (BOARD_WORDS as i64 - 1) << 3;

/// Builds the go-like evaluation kernel with `iters` position visits.
#[must_use]
pub fn go_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (base, cnt, state, t1, off, slot, pos, bits, score, libs) =
        (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9), r(10));

    let mut b = ProgramBuilder::new();
    b.movi(base, BOARD_BASE as i64);
    b.movi(cnt, 0);
    b.movi(state, 0x0DDB_1A5E_5BAD_5EEDu64 as i64);
    b.movi(score, 0);
    b.movi(libs, 0);
    b.stop();
    let top = b.here();
    // Pick a pseudo-random board square.
    b.shli(t1, state, 13);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.shri(t1, state, 7);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.andi(off, state, INDEX_MASK);
    b.stop();
    b.add(slot, base, off);
    b.stop();
    b.ld8(pos, slot, 0);
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    // Evaluation: two data-dependent, poorly-predictable branches.
    b.andi(bits, pos, 3);
    b.stop();
    b.cmpi(CmpKind::Eq, p(3), p(4), bits, 0);
    b.stop();
    let empty = b.new_label();
    b.br_cond(p(3), empty);
    b.stop();
    // Occupied square: liberties-style accounting.
    b.shri(t1, pos, 2);
    b.stop();
    b.andi(t1, t1, 7);
    b.stop();
    b.add(libs, libs, t1);
    b.stop();
    b.cmpi(CmpKind::Lt, p(5), p(6), t1, 4);
    b.stop();
    let weak = b.new_label();
    b.br_cond(p(5), weak);
    b.stop();
    b.addi(score, score, 5);
    b.stop();
    b.bind(weak);
    b.addi(score, score, -1);
    b.stop();
    b.bind(empty);
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("go kernel is well-formed");

    let mut memory = MemoryImage::new();
    fill_random_words(&mut memory, BOARD_BASE, BOARD_WORDS, 0x099);

    Workload {
        name: "go-like",
        spec_ref: "099.go",
        description: "branchy integer evaluation over a modest board footprint",
        program,
        memory,
        budget: 24 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&go_like(40));
    }
}
