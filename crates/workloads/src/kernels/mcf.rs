//! `mcf_like` — 181.mcf: the paper's Figure 1 loop.
//!
//! 181.mcf's dominant loop scans a huge array of network arcs; for each
//! arc it loads the tail-node pointer and the arc cost, then reads a
//! field of the pointed-to node and conditionally updates another. The
//! arc array streams (independent misses the A-pipe can overlap), while
//! the node reads are dependent short chains that defer to the B-pipe.
//! The footprint (arcs ≈ 8 MB + nodes ≈ 4 MB) far exceeds the 1.5 MB L3,
//! so misses reach main memory — the benchmark the paper reports a 62%
//! memory-stall reduction and 23% cycle reduction on.

use crate::common::XorShift64;
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const ARC_BASE: u64 = 0x0100_0000;
const ARC_STRIDE: u64 = 128; // one L2/L3 line per arc
const ARC_COUNT: u64 = 65_536; // 8 MB of arcs
const NODE_BASE: u64 = 0x0200_0000;
const NODE_STRIDE: u64 = 64;
const NODE_COUNT: u64 = 65_536; // 4 MB of nodes
const PARAM_ADDR: u64 = 0x00F0_0000;

/// Builds the mcf-like arc-scan kernel with `iters` arc visits.
#[must_use]
pub fn mcf_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let (arc, cnt, tail, cost, head, pot, new_flow) =
        (r(1), r(2), r(10), r(11), r(12), r(13), r(14));
    let (param, limit) = (r(3), r(4));

    let mut b = ProgramBuilder::new();
    b.movi(arc, ARC_BASE as i64);
    b.movi(cnt, 0);
    b.movi(param, PARAM_ADDR as i64);
    b.stop();
    // A loop-invariant tariff produced by a *deferred* instruction: the
    // add consumes an in-flight cold miss, so `limit` is invalid in the
    // A-file until the B->A feedback path delivers it (Figure 8's
    // subject). With feedback disabled, every iteration's compare below
    // re-defers.
    b.ld8(limit, param, 0);
    b.stop();
    b.addi(limit, limit, 1);
    b.stop();
    let top = b.here();
    // Group 1: two independent arc-field loads (stream — the part the
    // A-pipe keeps initiating while everything below is deferred).
    b.ld8(tail, arc, 0); // arc->tail (node pointer)
    b.ld8(cost, arc, 8); // arc->cost
    b.stop();
    // Group 2: advance the arc cursor (independent of the loads).
    b.addi(arc, arc, ARC_STRIDE as i64);
    b.stop();
    // Group 3: first dependent hop — the tail node's mate pointer.
    b.ld8(head, tail, 0); // node->head
    b.stop();
    // Group 4: loop counter (filler keeps load-use distance ≥ 2).
    b.addi(cnt, cnt, 1);
    b.stop();
    // Group 5: second dependent hop — the head node's potential.
    b.ld8(pot, head, 16); // node->potential
    b.stop();
    // Tariff probe: its only unready source can be `limit`, so its
    // deferral directly witnesses the feedback path's health (Fig. 8).
    b.add(r(15), limit, cnt);
    b.stop();
    // Group 7: reduced cost (depends on the second hop).
    b.sub(new_flow, pot, cost);
    b.stop();
    // Group 8: is the reduced cost under the invariant tariff?
    b.cmp(CmpKind::Lt, p(1), p(2), new_flow, limit);
    b.stop();
    // Group 9: conditional flow update into the node.
    b.with_pred(p(1));
    b.st8(new_flow, head, 24); // node->flow
    b.stop();
    // Loop control.
    b.cmpi(CmpKind::Lt, p(3), p(4), cnt, iters as i64);
    b.stop();
    b.br_cond(p(3), top);
    b.stop();
    b.halt();
    let program = b.build().expect("mcf kernel is well-formed");

    let mut memory = MemoryImage::new();
    memory.write_u64(PARAM_ADDR, 120);
    let mut rng = XorShift64::new(0x181);
    for i in 0..ARC_COUNT.min(iters + 1) {
        let arc_addr = ARC_BASE + i * ARC_STRIDE;
        let node = NODE_BASE + rng.below(NODE_COUNT) * NODE_STRIDE;
        let mate = NODE_BASE + rng.below(NODE_COUNT) * NODE_STRIDE;
        memory.write_u64(arc_addr, node);
        memory.write_u64(arc_addr + 8, rng.below(1000));
        memory.write_u64(node, mate);
        memory.write_u64(mate + 16, rng.below(800));
    }

    Workload {
        name: "mcf-like",
        spec_ref: "181.mcf",
        description: "huge-footprint arc streaming with dependent node-field updates",
        program,
        memory,
        budget: 16 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&mcf_like(40));
    }

    #[test]
    fn footprint_exceeds_l3() {
        const { assert!(ARC_COUNT * ARC_STRIDE > 1536 * 1024) }
    }
}
