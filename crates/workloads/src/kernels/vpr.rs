//! `vpr_like` — 175.vpr: the paper's loss case.
//!
//! 175.vpr's placement cost loops are chains of floating-point
//! operations. Because the A-pipe never waits for anticipable FP
//! latency, it defers the whole chain — the paper measures "98% of its
//! long-latency floating point instructions, in chains" deferred — and
//! the deferred chains then serialize in the B-pipe, with store-conflict
//! flushes from cost writebacks read back soon after. The kernel builds
//! a serial FP accumulation over an L2-resident net array, writes the
//! running cost to a history slot, and re-reads the previous slot while
//! the writing store is often still deferred.

use crate::common::fill_random_f64;
use crate::Workload;
use ff_isa::reg::{FpReg, IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const NET_BASE: u64 = 0x1000_0000;
const NET_WORDS: u64 = 4_096; // 32 KB of net coordinates (L2-resident)
const NET_MASK: i64 = (NET_WORDS as i64 - 1) << 3;
const HIST_BASE: u64 = 0x1080_0000;

/// Builds the vpr-like FP-chain kernel with `iters` cost updates.
#[must_use]
pub fn vpr_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let f = FpReg::n;
    let (cnt, state, t1, off, slot, hist, net_base) = (r(2), r(3), r(4), r(5), r(6), r(7), r(1));
    let (coord, cost, scale, delta, prev) = (f(1), f(2), f(3), f(4), f(5));

    let mut b = ProgramBuilder::new();
    b.movi(net_base, NET_BASE as i64);
    b.movi(hist, HIST_BASE as i64);
    b.movi(cnt, 0);
    b.movi(state, 0x175_175_175u64 as i64);
    b.stop();
    b.fmovi(cost, 1.0);
    b.fmovi(scale, 0.999_993);
    b.stop();
    let top = b.here();
    // Pick a net (compactly scheduled: the compiler packs the integer
    // scaffolding, so the baseline is bound by the FP critical path, not
    // by stop bits).
    b.shli(t1, state, 13);
    b.addi(cnt, cnt, 1);
    b.addi(hist, hist, 8);
    b.stop();
    b.xor(state, state, t1);
    b.stop();
    b.andi(off, state, NET_MASK);
    b.stop();
    // `prev` reads a slot written three iterations ago — that store
    // hangs off the FP chain, so when the coupling queue is backed up it
    // is still deferred and this pre-executed load becomes vpr's
    // store-conflict exposure (occasional, like the paper's).
    b.add(slot, net_base, off);
    b.ldf(prev, hist, -24);
    b.stop();
    b.nop();
    b.stop();
    b.ldf(coord, slot, 0);
    b.stop();
    b.nop();
    b.stop();
    // Serial FP cost chain: each op depends on the previous through
    // `cost` — anticipable 4-cycle latencies the A-pipe defers wholesale.
    b.fmul(delta, coord, scale);
    b.stop();
    b.fadd(cost, cost, delta);
    b.stop();
    b.fmul(cost, cost, scale);
    b.stop();
    b.fadd(cost, cost, prev);
    b.stop();
    // Cost history writeback: data hangs off the FP chain, so the store
    // defers until the chain resolves in the B-pipe.
    b.stf(cost, hist, 0);
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("vpr kernel is well-formed");

    let mut memory = MemoryImage::new();
    fill_random_f64(&mut memory, NET_BASE, NET_WORDS, 0x175);
    memory.write_f64(HIST_BASE - 8, 0.0);

    Workload {
        name: "vpr-like",
        spec_ref: "175.vpr",
        description: "serial FP chains deferred wholesale, with history-slot store conflicts",
        program,
        memory,
        budget: 24 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&vpr_like(40));
    }
}
