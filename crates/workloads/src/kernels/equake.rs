//! `equake_like` — 183.equake: streaming FP stencil.
//!
//! 183.equake's sparse matrix-vector kernels stream several large FP
//! arrays. The accesses are independent from iteration to iteration, so
//! when the two-pass A-pipe defers the consumers of a missing element it
//! keeps initiating the next elements' misses — the paper highlights
//! that "the significant portion of the L3 cache misses in 183.equake
//! started in the A-pipe" and credits its large speedup to overlapping
//! those long misses. Three 2 MB source streams plus a 2 MB destination
//! stream (8 MB total) overflow the L3.

use crate::common::fill_random_f64;
use crate::Workload;
use ff_isa::reg::{FpReg, IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const STREAM_WORDS: u64 = 262_144; // 2 MB per array
const A_BASE: u64 = 0x0800_0000;
const B_BASE: u64 = 0x0880_0000;
const C_BASE: u64 = 0x0900_0000;
const OUT_BASE: u64 = 0x0980_0000;
const PARAM_ADDR: u64 = 0x07F0_0000;

/// Builds the equake-like stencil kernel with `iters` elements.
#[must_use]
pub fn equake_like(iters: u64) -> Workload {
    let r = IntReg::n;
    let p = PredReg::n;
    let f = FpReg::n;
    let (pa, pb, pc, po, cnt) = (r(1), r(2), r(3), r(4), r(5));
    let (va, vb, vc, prod, sum) = (f(1), f(2), f(3), f(4), f(5));
    let (param, excit) = (r(6), f(11));

    let mut b = ProgramBuilder::new();
    b.movi(param, PARAM_ADDR as i64);
    b.stop();
    // Loop-invariant excitation coefficient behind a deferred FP
    // multiply (cold miss feeds it): until B->A feedback delivers it,
    // every stencil multiply below must defer (Figure 8's subject).
    b.ldf(excit, param, 0);
    b.stop();
    // The pointer inits are load-independent, so they fill the load-use
    // shadow; squaring the coefficient after them gives the `ldf` two
    // full groups to deliver even on an L1 hit.
    b.movi(pa, A_BASE as i64);
    b.movi(pb, B_BASE as i64);
    b.movi(pc, C_BASE as i64);
    b.stop();
    b.movi(po, OUT_BASE as i64);
    b.movi(cnt, 0);
    b.stop();
    b.fmul(excit, excit, excit);
    b.stop();
    let top = b.here();
    // Group 1: three stream loads (exactly the 3 memory slots).
    b.ldf(va, pa, 0);
    b.ldf(vb, pb, 0);
    b.ldf(vc, pc, 0);
    b.stop();
    // Group 2: advance source cursors (independent).
    b.addi(pa, pa, 8);
    b.addi(pb, pb, 8);
    b.addi(pc, pc, 8);
    b.stop();
    // Group 3: counter (pads load-use distance to 2).
    b.addi(cnt, cnt, 1);
    b.stop();
    // Group 4: stencil multiply, scaled by the invariant coefficient.
    b.fmul(prod, va, vb);
    b.stop();
    b.fmul(prod, prod, excit);
    b.stop();
    // Groups 5-6: second element of the stencil (unrolled x2) keeps
    // memory pressure high while the first element's FP chain drains.
    b.ldf(f(6), pa, 8);
    b.ldf(f(7), pb, 8);
    b.ldf(f(8), pc, 8);
    b.stop();
    b.addi(pa, pa, 8);
    b.addi(pb, pb, 8);
    b.addi(pc, pc, 8);
    b.stop();
    b.fadd(sum, prod, vc);
    b.stop();
    b.fmul(f(9), f(6), f(7));
    b.stop();
    // Coefficient probe: defers only while `excit` awaits B->A feedback.
    b.fmov(f(12), excit);
    b.stop();
    // Store the first element, then finish and store the second.
    b.stf(sum, po, 0);
    b.stop();
    b.fadd(f(10), f(9), f(8));
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.stf(f(10), po, 8);
    b.stop();
    b.addi(po, po, 16);
    b.stop();
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("equake kernel is well-formed");

    let mut memory = MemoryImage::new();
    memory.write_f64(PARAM_ADDR, 1.25);
    let n = STREAM_WORDS.min(iters + 8);
    fill_random_f64(&mut memory, A_BASE, n, 0x183);
    fill_random_f64(&mut memory, B_BASE, n, 0x184);
    fill_random_f64(&mut memory, C_BASE, n, 0x185);

    Workload {
        name: "equake-like",
        spec_ref: "183.equake",
        description: "streaming FP stencil: independent long misses overlapped by the A-pipe",
        program,
        memory,
        budget: 32 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&equake_like(40));
    }

    #[test]
    fn four_streams_overflow_l3() {
        const { assert!(4 * STREAM_WORDS * 8 > 1536 * 1024) }
    }
}
