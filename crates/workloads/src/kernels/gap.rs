//! `gap_like` — 254.gap: main-memory-latency dependent chains.
//!
//! The paper notes 254.gap "executes most of its substantial number of
//! main memory accesses in the B-pipe, and thus displays only a small
//! performance improvement": its misses sit on dependent chains the
//! A-pipe cannot pre-execute. This kernel is a shuffled pointer chase
//! over a 4 MB workspace (beyond the 1.5 MB L3) with light arithmetic on
//! each node — every next-pointer load depends on the previous miss.

use crate::common::shuffled_chain;
use crate::Workload;
use ff_isa::reg::{IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};

const BAG_BASE: u64 = 0x0400_0000;
const BAG_STRIDE: u64 = 128;
const BAG_COUNT: u64 = 32_768; // 4 MB
const SIDE_BASE: u64 = 0x0480_0000;

/// Builds the gap-like dependent-chase kernel with `iters` node visits.
#[must_use]
pub fn gap_like(iters: u64) -> Workload {
    let mut memory = MemoryImage::new();
    let start = shuffled_chain(&mut memory, BAG_BASE, BAG_COUNT, BAG_STRIDE, 0x254);
    for i in 0..BAG_COUNT {
        memory.write_u64(BAG_BASE + i * BAG_STRIDE + 8, i.wrapping_mul(0x9E37_79B9));
    }
    for i in 0..(iters + 1) {
        memory.write_u64(SIDE_BASE + i * 64, i ^ 0x5555);
    }

    let r = IntReg::n;
    let p = PredReg::n;
    let (node, cnt, val, acc, tmp, side_ptr, side_val, side_acc) =
        (r(1), r(2), r(10), r(11), r(12), r(3), r(13), r(14));

    let mut b = ProgramBuilder::new();
    b.movi(node, start as i64);
    b.movi(cnt, 0);
    b.movi(acc, 0);
    b.movi(side_ptr, SIDE_BASE as i64);
    b.stop();
    let top = b.here();
    // Group 1: node payload (same line as the hop: merges with it).
    b.ld8(val, node, 8);
    b.stop();
    // Group 2: the chase hop — depends on last iteration's miss. This is
    // the serialization the A-pipe cannot break.
    b.ld8(node, node, 0);
    b.stop();
    // Group 3: a small independent side-table walk — the only work the
    // A-pipe can overlap with the chase (gap's "small improvement").
    b.ld8(side_val, side_ptr, 0);
    b.addi(cnt, cnt, 1);
    b.stop();
    b.addi(side_ptr, side_ptr, 64);
    b.stop();
    // Handle-style arithmetic on the payloads.
    b.shri(tmp, val, 2);
    b.stop();
    b.add(acc, acc, tmp);
    b.stop();
    b.add(side_acc, side_acc, side_val);
    b.stop();
    b.cmpi(CmpKind::Lt, p(1), p(2), cnt, iters as i64);
    b.stop();
    b.br_cond(p(1), top);
    b.stop();
    b.halt();
    let program = b.build().expect("gap kernel is well-formed");

    Workload {
        name: "gap-like",
        spec_ref: "254.gap",
        description: "main-memory pointer chase: dependent misses the A-pipe cannot start",
        program,
        memory,
        budget: 16 * iters + 64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::check_kernel;

    #[test]
    fn kernel_is_well_formed() {
        check_kernel(&gap_like(30));
    }

    #[test]
    fn footprint_exceeds_l3() {
        const { assert!(BAG_COUNT * BAG_STRIDE > 1536 * 1024) }
    }
}
