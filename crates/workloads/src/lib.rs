//! # ff-workloads — synthetic SPEC-like kernels
//!
//! The paper (Table 2) evaluates ten SPEC95/2000 benchmarks compiled by
//! the IMPACT compiler. Neither the binaries nor the compiler are
//! reproducible here, so this crate substitutes **hand-scheduled
//! synthetic kernels**, one per benchmark, each engineered to exhibit the
//! memory-system and branch behaviour the paper reports for its
//! namesake:
//!
//! | kernel | modeled trait |
//! |---|---|
//! | `go_like` | branchy integer code, hard-to-predict data-dependent branches |
//! | `compress_like` | ubiquitous short L1-miss/L2-hit stalls on a hash table |
//! | `li_like` | L2-resident cons-cell chains (short dependent misses) |
//! | `vpr_like` | FP dependence chains the A-pipe defers wholesale (the paper's loss case) |
//! | `mcf_like` | huge-footprint arc streaming + dependent node fields (the paper's Figure 1 loop) |
//! | `equake_like` | streaming FP stencil with overlappable long misses |
//! | `parser_like` | mixed hash probes, short chains, and branches |
//! | `gap_like` | main-memory-latency pointer chase (B-pipe-dominated) |
//! | `vortex_like` | object field read-modify-write traffic with deferred stores |
//! | `twolf_like` | loads feeding branch conditions (B-DET resolution pressure) |
//!
//! Kernels follow the EPIC schedule discipline the IMPACT compiler would
//! apply: no intra-group dependences (checked by
//! [`ff_isa::check_group_hazards`] in tests) and consumers placed ≥ 2
//! groups after loads, assuming L1-hit latency.
//!
//! [`random`] additionally provides a bounded random-program generator
//! used by the cross-engine differential property tests.

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod common;
pub mod fixtures;
pub mod kernels;
pub mod random;
pub mod synth;

use ff_isa::{MemoryImage, Program};

/// A ready-to-simulate workload: program, initial memory, and metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short kernel name, e.g. `"mcf-like"`.
    pub name: &'static str,
    /// The SPEC benchmark it stands in for, e.g. `"181.mcf"`.
    pub spec_ref: &'static str,
    /// One-line description of the modeled behaviour.
    pub description: &'static str,
    /// The scheduled program.
    pub program: Program,
    /// Initial data memory.
    pub memory: MemoryImage,
    /// Dynamic-instruction budget a harness run should use.
    pub budget: u64,
}

/// Simulation scale: multiplies each kernel's iteration count.
///
/// `Tiny` is for unit tests, `Test` for the default harness runs
/// (seconds per benchmark), `Reference` for longer, more stable numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred iterations: unit-test sized.
    Tiny,
    /// The default harness scale (hundreds of thousands of dynamic
    /// instructions per kernel).
    Test,
    /// Several times `Test`, for low-variance measurements.
    Reference,
}

impl Scale {
    /// Stable lowercase label (`"tiny"`, `"test"`, `"ref"`), used in
    /// CLI parsing and cache keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Test => "test",
            Scale::Reference => "ref",
        }
    }

    /// Parses a scale label; accepts `"reference"` as an alias of
    /// `"ref"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "test" => Some(Scale::Test),
            "ref" | "reference" => Some(Scale::Reference),
            _ => None,
        }
    }

    /// Iteration multiplier relative to `Tiny`.
    #[must_use]
    pub fn factor(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Test => 64,
            Scale::Reference => 256,
        }
    }
}

/// All ten paper benchmarks at the given scale, in Table 2 order.
#[must_use]
pub fn paper_benchmarks(scale: Scale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        kernels::go_like(100 * f),
        kernels::compress_like(150 * f),
        kernels::li_like(150 * f),
        kernels::vpr_like(100 * f),
        kernels::mcf_like(60 * f),
        kernels::equake_like(60 * f),
        kernels::parser_like(80 * f),
        kernels::gap_like(30 * f),
        kernels::vortex_like(100 * f),
        kernels::twolf_like(100 * f),
    ]
}

/// Looks up one paper benchmark by kernel name (e.g. `"mcf-like"`) or by
/// SPEC reference (e.g. `"181.mcf"`).
#[must_use]
pub fn benchmark_by_name(name: &str, scale: Scale) -> Option<Workload> {
    paper_benchmarks(scale).into_iter().find(|w| w.name == name || w.spec_ref == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_in_table2_order() {
        let all = paper_benchmarks(Scale::Tiny);
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].spec_ref, "099.go");
        assert_eq!(all[4].spec_ref, "181.mcf");
        assert_eq!(all[9].spec_ref, "300.twolf");
    }

    #[test]
    fn lookup_by_either_name() {
        assert!(benchmark_by_name("mcf-like", Scale::Tiny).is_some());
        assert!(benchmark_by_name("181.mcf", Scale::Tiny).is_some());
        assert!(benchmark_by_name("nonesuch", Scale::Tiny).is_none());
    }

    #[test]
    fn scale_factors_are_ordered() {
        assert!(Scale::Tiny.factor() < Scale::Test.factor());
        assert!(Scale::Test.factor() < Scale::Reference.factor());
    }
}
