//! Parameterized synthetic kernel construction.
//!
//! The ten named kernels in [`crate::kernels`] are fixed reproductions of
//! the paper's Table 2 benchmarks. [`SynthSpec`] generalizes them: pick a
//! footprint, an access pattern, dependence-chain lengths, and branch
//! behaviour, and get a schedule-disciplined [`Workload`] back — useful
//! for sweeping the two-pass design space beyond the paper's suite
//! (e.g. "at what miss latency does deferral stop paying?").
//!
//! Generated kernels follow the same EPIC discipline as the hand-written
//! ones: no intra-group hazards and load consumers ≥ 2 groups downstream.

use crate::common::{fill_random_words, shuffled_chain};
use crate::Workload;
use ff_isa::reg::{FpReg, IntReg, PredReg};
use ff_isa::{CmpKind, MemoryImage, ProgramBuilder};
use serde::{Deserialize, Serialize};

/// How the kernel's loads address its footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential streaming with the given byte stride (independent
    /// iterations — the A-pipe can run ahead).
    Stream {
        /// Bytes between consecutive elements.
        stride: u64,
    },
    /// Pseudo-randomly indexed accesses (independent iterations, no
    /// spatial locality).
    RandomIndex,
    /// A shuffled pointer chase (fully dependent iterations — the
    /// A-pipe cannot run ahead).
    PointerChase,
}

/// Branch behaviour inside the loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// No body branch (only the loop back-edge).
    None,
    /// A branch whose direction depends on loaded data bits — roughly
    /// 50/50 and unlearnable, resolving at B-DET when the load misses.
    DataDependent,
}

/// A parameterized synthetic workload description.
///
/// # Examples
///
/// ```
/// use ff_workloads::synth::{AccessPattern, BranchBehavior, SynthSpec};
///
/// let w = SynthSpec {
///     iterations: 200,
///     footprint_bytes: 1 << 20, // 1 MB: L3-resident
///     access: AccessPattern::Stream { stride: 128 },
///     alu_chain: 2,
///     fp_chain: 0,
///     store_every: true,
///     branch: BranchBehavior::None,
///     seed: 7,
/// }
/// .build();
/// assert_eq!(w.name, "synthetic");
/// assert!(w.budget > 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Loop iterations.
    pub iterations: u64,
    /// Data footprint in bytes (rounded up to a power of two words).
    pub footprint_bytes: u64,
    /// Address pattern of the per-iteration load.
    pub access: AccessPattern,
    /// Length of the dependent integer chain consuming the load.
    pub alu_chain: usize,
    /// Length of a serial FP chain per iteration (anticipable latencies
    /// the A-pipe defers).
    pub fp_chain: usize,
    /// Whether each iteration writes a result back to its slot.
    pub store_every: bool,
    /// Body branch behaviour.
    pub branch: BranchBehavior,
    /// Data-initialization seed.
    pub seed: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            iterations: 256,
            footprint_bytes: 256 * 1024,
            access: AccessPattern::Stream { stride: 64 },
            alu_chain: 2,
            fp_chain: 0,
            store_every: false,
            branch: BranchBehavior::None,
            seed: 1,
        }
    }
}

const DATA_BASE: u64 = 0x4000_0000;

impl SynthSpec {
    /// Builds the workload: program + initialized memory + budget.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero or the footprint is under one cache
    /// line (64 bytes).
    #[must_use]
    pub fn build(&self) -> Workload {
        assert!(self.iterations > 0, "iterations must be nonzero");
        assert!(self.footprint_bytes >= 64, "footprint under one cache line");
        let words = (self.footprint_bytes / 8).next_power_of_two();
        let r = IntReg::n;
        let f = FpReg::n;
        let p = PredReg::n;
        let (ptr, cnt, state, t1, off, slot, val, acc, cursor) =
            (r(1), r(2), r(3), r(4), r(5), r(6), r(7), r(8), r(9));

        let mut memory = MemoryImage::new();
        let chase_start = match self.access {
            AccessPattern::PointerChase => {
                let stride = 64.max(self.footprint_bytes / 4096).next_power_of_two();
                let count = (self.footprint_bytes / stride).max(2);
                shuffled_chain(&mut memory, DATA_BASE, count, stride, self.seed)
            }
            _ => {
                fill_random_words(&mut memory, DATA_BASE, words, self.seed);
                DATA_BASE
            }
        };

        let mut b = ProgramBuilder::new();
        b.movi(ptr, chase_start as i64);
        b.movi(cnt, 0);
        b.movi(state, 0x5EED_0000_0001 + self.seed as i64);
        b.movi(acc, 0);
        b.stop();
        if self.fp_chain > 0 {
            b.fmovi(f(1), 1.0);
            b.fmovi(f(2), 0.999_9);
            b.stop();
        }
        let top = b.here();

        // Address generation + the load.
        let fmask = ((words as i64) - 1) << 3;
        match self.access {
            AccessPattern::Stream { stride } => {
                // Advance a byte cursor and wrap it into the footprint,
                // so residency (not just stride) decides the miss rate.
                b.addi(cursor, cursor, stride as i64);
                b.stop();
                b.andi(off, cursor, fmask);
                b.stop();
                b.add(slot, ptr, off);
                b.stop();
                b.nop();
                b.stop();
                b.ld8(val, slot, 0);
                b.stop();
            }
            AccessPattern::RandomIndex => {
                // Full xorshift step: the shr leg is what moves the low
                // (index) bits.
                b.shli(t1, state, 13);
                b.stop();
                b.xor(state, state, t1);
                b.stop();
                b.shri(t1, state, 7);
                b.stop();
                b.xor(state, state, t1);
                b.stop();
                b.andi(off, state, fmask);
                b.stop();
                b.add(slot, ptr, off);
                b.stop();
                b.nop();
                b.stop();
                b.ld8(val, slot, 0);
                b.stop();
            }
            AccessPattern::PointerChase => {
                b.ld8(val, ptr, 8);
                b.stop();
                b.ld8(ptr, ptr, 0);
                b.stop();
            }
        }
        // Counter keeps load-use distance ≥ 2 groups.
        b.addi(cnt, cnt, 1);
        b.stop();

        // Dependent integer chain on the loaded value.
        let mut producer = val;
        for i in 0..self.alu_chain {
            let d = r(10 + i as u8 % 8);
            b.shri(d, producer, 1);
            b.stop();
            producer = d;
        }
        b.add(acc, acc, producer);
        b.stop();

        // Serial FP chain (anticipable latencies).
        for _ in 0..self.fp_chain {
            b.fmul(f(1), f(1), f(2));
            b.stop();
        }

        // Optional read-modify-write.
        if self.store_every {
            let target = match self.access {
                AccessPattern::RandomIndex => slot,
                _ => ptr,
            };
            b.st8(acc, target, 16);
            b.stop();
        }

        // Optional data-dependent branch.
        if self.branch == BranchBehavior::DataDependent {
            b.andi(t1, val, 1);
            b.stop();
            b.cmpi(CmpKind::Eq, p(3), p(4), t1, 1);
            b.stop();
            let skip = b.new_label();
            b.br_cond(p(3), skip);
            b.stop();
            b.addi(acc, acc, 3);
            b.stop();
            b.bind(skip);
        }

        b.cmpi(CmpKind::Lt, p(1), p(2), cnt, self.iterations as i64);
        b.stop();
        b.br_cond(p(1), top);
        b.stop();
        b.halt();

        let program = b.build().expect("synthetic kernel is well-formed");
        let per_iter = 12
            + self.alu_chain as u64
            + self.fp_chain as u64
            + u64::from(self.store_every) * 2
            + match self.branch {
                BranchBehavior::None => 0,
                BranchBehavior::DataDependent => 5,
            };
        Workload {
            name: "synthetic",
            spec_ref: "synthetic",
            description: "parameterized synthetic kernel",
            program,
            memory,
            budget: per_iter.max(10) * 2 * self.iterations + 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_isa::{check_group_hazards, ArchState};

    fn check(spec: SynthSpec) {
        let w = spec.build();
        check_group_hazards(&w.program).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
        let mut interp = ArchState::new(&w.program, w.memory.clone());
        interp.run(w.budget);
        assert!(interp.is_halted(), "{spec:?} must halt within budget");
    }

    #[test]
    fn all_access_patterns_build_and_halt() {
        for access in [
            AccessPattern::Stream { stride: 64 },
            AccessPattern::RandomIndex,
            AccessPattern::PointerChase,
        ] {
            check(SynthSpec { access, iterations: 64, ..SynthSpec::default() });
        }
    }

    #[test]
    fn feature_combinations_build_and_halt() {
        for store in [false, true] {
            for branch in [BranchBehavior::None, BranchBehavior::DataDependent] {
                for fp in [0usize, 3] {
                    check(SynthSpec {
                        iterations: 40,
                        store_every: store,
                        branch,
                        fp_chain: fp,
                        alu_chain: 4,
                        ..SynthSpec::default()
                    });
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "iterations must be nonzero")]
    fn zero_iterations_rejected() {
        let _ = SynthSpec { iterations: 0, ..SynthSpec::default() }.build();
    }

    #[test]
    fn footprint_rounds_to_power_of_two_words() {
        let w = SynthSpec { footprint_bytes: 100_000, ..SynthSpec::default() }.build();
        assert!(w.memory.resident_pages() > 0);
    }
}
