//! Hand-written negative fixtures for the schedule-quality lints and
//! the predicate-aware dead-write analysis.
//!
//! Each fixture is a minimal *legal* program engineered to trip (or,
//! for [`complementary_overwrite`], to exonerate) exactly one analysis
//! in `ff-verify`. They live here rather than in the verifier's test
//! tree so the `ff_verify` CLI, the property tests, and any future
//! scheduler work share one corpus, built with the same
//! [`ProgramBuilder`] discipline as the paper kernels.

use ff_isa::reg::{FpReg, IntReg, PredReg};
use ff_isa::{CmpKind, Program, ProgramBuilder};

/// A load whose consumer sits in the very next issue group — inside
/// even the L1-hit shadow — while two independent trailing groups give
/// it ample room to move later. Trips `schedule/load-use`
/// (SSR's statically checkable load-use placement property).
#[must_use]
pub fn load_use_hazard() -> Program {
    let r = IntReg::n;
    let f = FpReg::n;
    let mut b = ProgramBuilder::new();
    b.movi(r(1), 0x4000);
    b.stop();
    b.ldf(f(1), r(1), 0);
    b.stop();
    // Consumer one group after the load: even an L1 hit stalls it.
    b.fmul(f(2), f(1), f(1));
    b.stop();
    // Independent tail the consumer could have been scheduled past: by
    // the time the store needs the product, the multiply had room to
    // start well after the load delivered.
    for i in 2..7 {
        b.movi(r(i), i64::from(i));
        b.stop();
    }
    b.stf(f(2), r(1), 8);
    b.stop();
    b.halt();
    b.build().expect("load-use fixture is well-formed")
}

/// A serial chain of dependent single-cycle ALU operations long enough
/// to clear `CHAIN_LINT_MIN_LEN`. Trips `schedule/chain-opportunity`
/// (a chained/fused ALU or re-association would shorten the height).
#[must_use]
pub fn serial_alu_chain() -> Program {
    let r = IntReg::n;
    let mut b = ProgramBuilder::new();
    b.movi(r(1), 1);
    b.stop();
    for _ in 0..12 {
        b.addi(r(1), r(1), 3);
        b.stop();
    }
    b.st8(r(1), r(1), 0);
    b.stop();
    b.halt();
    b.build().expect("chain fixture is well-formed")
}

/// An if-converted diamond whose arms overwrite `r3` under
/// complementary predicates, preceded by a now-dead unconditional
/// definition of `r3`.
///
/// The dead-write analysis must treat the `(p1)`/`(p2)` pair as
/// *jointly* killing: the pre-diamond `movi` is a true dead write
/// (flagged), while neither arm is (each is read by the store on its
/// own path).
#[must_use]
pub fn complementary_overwrite() -> Program {
    let r = IntReg::n;
    let p = PredReg::n;
    let mut b = ProgramBuilder::new();
    b.movi(r(1), 0x4000);
    b.movi(r(2), 7);
    b.movi(r(3), 99); // dead: both diamond arms overwrite r3
    b.stop();
    b.cmpi(CmpKind::Lt, p(1), p(2), r(2), 10);
    b.stop();
    b.with_pred(p(1)).movi(r(3), 1);
    b.with_pred(p(2)).movi(r(3), 2);
    b.stop();
    b.st8(r(3), r(1), 0);
    b.stop();
    b.halt();
    b.build().expect("complementary-overwrite fixture is well-formed")
}
