//! Sweep of the B→A committed-result feedback latency (the paper's
//! Figure 8 experiment) on one workload.
//!
//! ```text
//! cargo run --release --example feedback_sweep
//! ```

use fleaflicker::core::{FeedbackLatency, MachineConfig, TwoPass};
use fleaflicker::workloads::{benchmark_by_name, Scale};

fn main() {
    let w = benchmark_by_name("181.mcf", Scale::Test).expect("mcf-like is built in");
    println!("feedback-latency sweep on {} ({} instr budget)\n", w.name, w.budget);
    println!("{:>8}  {:>10}  {:>10}  {:>9}", "latency", "cycles", "deferred", "defer %");

    let mut baseline_cycles = None;
    for lat in [
        FeedbackLatency::Cycles(1),
        FeedbackLatency::Cycles(2),
        FeedbackLatency::Cycles(4),
        FeedbackLatency::Cycles(8),
        FeedbackLatency::Infinite,
    ] {
        let mut cfg = MachineConfig::paper_table1();
        cfg.two_pass.feedback_latency = lat;
        let report = TwoPass::new(&w.program, w.memory.clone(), cfg).run(w.budget);
        let tp = report.two_pass.expect("two-pass stats present");
        let label = match lat {
            FeedbackLatency::Cycles(c) => format!("{c}"),
            FeedbackLatency::Infinite => "inf".to_string(),
        };
        println!(
            "{label:>8}  {:>10}  {:>10}  {:>8.1}%",
            report.cycles,
            tp.deferred,
            100.0 * tp.deferral_rate()
        );
        baseline_cycles.get_or_insert(report.cycles);
    }
    println!("\n(the paper finds the path tolerant of moderate latency, esp. up to ~4 cycles)");
}
