//! Authoring a custom workload against the public API.
//!
//! Builds a saxpy-like kernel with the `ProgramBuilder`, verifies it on
//! the golden interpreter, lints its EPIC schedule, and measures it on
//! all machine models — the full downstream-user workflow.
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use fleaflicker::core::{Baseline, MachineConfig, TwoPass};
use fleaflicker::isa::reg::{FpReg, IntReg, PredReg};
use fleaflicker::isa::{check_group_hazards, ArchState, CmpKind, MemoryImage, ProgramBuilder};

const X_BASE: u64 = 0x40_0000;
const Y_BASE: u64 = 0x80_0000;
const N: u64 = 4096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y[i] = a * x[i] + y[i]
    let (px, py, cnt) = (IntReg::n(1), IntReg::n(2), IntReg::n(3));
    let (a, x, y, ax, out) = (FpReg::n(1), FpReg::n(2), FpReg::n(3), FpReg::n(4), FpReg::n(5));
    let (pt, pf) = (PredReg::n(1), PredReg::n(2));

    let mut b = ProgramBuilder::new();
    b.movi(px, X_BASE as i64);
    b.movi(py, Y_BASE as i64);
    b.movi(cnt, 0);
    b.stop();
    b.fmovi(a, 2.5);
    b.stop();
    let top = b.here();
    b.ldf(x, px, 0);
    b.ldf(y, py, 0);
    b.stop();
    b.addi(px, px, 8);
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    b.fmul(ax, a, x);
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.fadd(out, ax, y);
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.nop();
    b.stop();
    b.stf(out, py, 0);
    b.stop();
    b.addi(py, py, 8);
    b.stop();
    b.cmpi(CmpKind::Lt, pt, pf, cnt, N as i64);
    b.stop();
    b.br_cond(pt, top);
    b.stop();
    b.halt();
    let program = b.build()?;

    // Lint the schedule like the kernel suite does.
    check_group_hazards(&program)?;

    let mut memory = MemoryImage::new();
    for i in 0..N {
        memory.write_f64(X_BASE + i * 8, i as f64 * 0.25);
        memory.write_f64(Y_BASE + i * 8, 100.0 - i as f64);
    }

    // Golden-model check before measuring anything.
    let mut interp = ArchState::new(&program, memory.clone());
    interp.run(10_000_000);
    assert!(interp.is_halted());
    let expected = interp.mem().read_f64(Y_BASE + 8); // y[1] = 2.5*0.25 + 99
    assert!((expected - 99.625).abs() < 1e-12);
    println!("golden interpreter: {} instructions, y[1] = {expected}", interp.instr_count());

    let cfg = MachineConfig::paper_table1();
    let base = Baseline::new(&program, memory.clone(), cfg.clone()).run(10_000_000);
    let two_pass = TwoPass::new(&program, memory, cfg).run(10_000_000);
    assert_eq!(base.retired, interp.instr_count());
    assert_eq!(two_pass.retired, interp.instr_count());

    println!(
        "baseline: {} cycles (ipc {:.2}); two-pass: {} cycles (ipc {:.2}); speedup {:.2}x",
        base.cycles,
        base.ipc(),
        two_pass.cycles,
        two_pass.ipc(),
        two_pass.speedup_over(&base)
    );
    Ok(())
}
