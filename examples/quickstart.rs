//! Quickstart: build a small program, run it on the baseline in-order
//! machine and on the flea-flicker two-pass machine, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fleaflicker::core::{Baseline, MachineConfig, TwoPass};
use fleaflicker::isa::reg::{IntReg, PredReg};
use fleaflicker::isa::{CmpKind, MemoryImage, ProgramBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop of independent streaming loads: the classic case where an
    // in-order machine stalls on every consumer while the two-pass
    // machine keeps initiating the next misses.
    let (ptr, cnt, sum, val) = (IntReg::n(1), IntReg::n(2), IntReg::n(3), IntReg::n(4));
    let (pt, pf) = (PredReg::n(1), PredReg::n(2));

    let mut b = ProgramBuilder::new();
    b.movi(ptr, 0x10_0000);
    b.movi(cnt, 0);
    b.movi(sum, 0);
    b.stop();
    let top = b.here();
    b.ld8(val, ptr, 0); // may miss all the way to memory
    b.stop();
    b.addi(ptr, ptr, 4096); // independent: next line
    b.stop();
    b.addi(cnt, cnt, 1);
    b.stop();
    b.add(sum, sum, val); // the stall-on-use point
    b.stop();
    b.cmpi(CmpKind::Lt, pt, pf, cnt, 512);
    b.stop();
    b.br_cond(pt, top);
    b.stop();
    b.halt();
    let program = b.build()?;

    let mut memory = MemoryImage::new();
    for i in 0..512u64 {
        memory.write_u64(0x10_0000 + i * 4096, i);
    }

    let cfg = MachineConfig::paper_table1();
    let base = Baseline::new(&program, memory.clone(), cfg.clone()).run(1_000_000);
    let two_pass = TwoPass::new(&program, memory, cfg).run(1_000_000);

    println!("== baseline (traditional in-order EPIC) ==");
    print!("{base}");
    println!();
    println!("== two-pass (flea-flicker) ==");
    print!("{two_pass}");
    println!();
    println!(
        "two-pass speedup: {:.2}x  (load-stall cycles {} -> {})",
        two_pass.speedup_over(&base),
        base.breakdown.load_stalls(),
        two_pass.breakdown.load_stalls(),
    );
    assert_eq!(base.retired, two_pass.retired, "both machines retire the same program");
    Ok(())
}
