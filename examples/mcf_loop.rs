//! The paper's motivating example (Figure 1/Figure 4): the dominant loop
//! of 181.mcf, whose cache-miss stalls the two-pass machine absorbs.
//!
//! Runs the mcf-like kernel on the baseline, two-pass, and two-pass-with-
//! regrouping machines and prints the Figure 6-style cycle breakdown for
//! each, plus the Figure 7-style initiated-access split.
//!
//! ```text
//! cargo run --release --example mcf_loop
//! ```

use fleaflicker::core::{Baseline, CycleClass, MachineConfig, Pipe, SimReport, TwoPass};
use fleaflicker::mem::MemLevel;
use fleaflicker::workloads::{benchmark_by_name, Scale};

fn breakdown_row(label: &str, r: &SimReport, base_cycles: u64) {
    print!("{label:>6}  norm={:.3}  ", r.cycles as f64 / base_cycles as f64);
    for class in CycleClass::ALL {
        print!("{}={:.1}% ", class.label(), 100.0 * r.breakdown.fraction(class));
    }
    println!();
}

fn access_row(label: &str, r: &SimReport) {
    print!("{label:>6}  ");
    for pipe in [Pipe::A, Pipe::B] {
        for level in MemLevel::ALL {
            let cycles = r.mem.access_cycles(pipe, level);
            if cycles > 0 {
                print!("{pipe}/{level}={cycles} ");
            }
        }
    }
    println!();
}

fn main() {
    let w = benchmark_by_name("181.mcf", Scale::Test).expect("mcf-like is built in");
    println!("workload: {} ({}): {}", w.name, w.spec_ref, w.description);

    let cfg = MachineConfig::paper_table1();
    let mut re_cfg = cfg.clone();
    re_cfg.two_pass.regroup = true;

    let base = Baseline::new(&w.program, w.memory.clone(), cfg.clone()).run(w.budget);
    let two_pass = TwoPass::new(&w.program, w.memory.clone(), cfg).run(w.budget);
    let regrouped = TwoPass::new(&w.program, w.memory.clone(), re_cfg).run(w.budget);

    println!("\n-- normalized execution cycles (Figure 6 style) --");
    breakdown_row("base", &base, base.cycles);
    breakdown_row("2P", &two_pass, base.cycles);
    breakdown_row("2Pre", &regrouped, base.cycles);

    println!("\n-- initiated access cycles by pipe and level (Figure 7 style) --");
    access_row("base", &base);
    access_row("2P", &two_pass);
    access_row("2Pre", &regrouped);

    let tp = two_pass.two_pass.as_ref().expect("two-pass stats present");
    println!(
        "\nmemory stall cycles: base={} 2P={} ({:.0}% reduction); overall {:.1}% fewer cycles",
        base.breakdown.load_stalls(),
        two_pass.breakdown.load_stalls(),
        100.0
            * (1.0
                - two_pass.breakdown.load_stalls() as f64
                    / base.breakdown.load_stalls().max(1) as f64),
        100.0 * (1.0 - two_pass.cycles as f64 / base.cycles as f64),
    );
    println!(
        "deferral rate {:.1}%, {} store-conflict flushes, feedback applied {}",
        100.0 * tp.deferral_rate(),
        tp.store_conflict_flushes,
        tp.feedback_applied
    );
}
