//! Design-space sweep with the parameterized synthetic workload
//! generator: at what memory-dependence depth does two-pass pipelining
//! stop paying?
//!
//! Sweeps footprints (L2-resident → memory-resident) and access patterns
//! (stream → random → chase) and prints the two-pass speedup for each —
//! the generalization of the paper's Figure 6 story: independent misses
//! are overlapped (speedup grows with miss cost), dependent misses are
//! not (speedup pinned at 1.0).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use fleaflicker::core::{Baseline, MachineConfig, TwoPass};
use fleaflicker::workloads::synth::{AccessPattern, SynthSpec};

fn main() {
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>9}",
        "pattern", "footprint", "base cyc", "2P cyc", "speedup"
    );
    println!("{}", "-".repeat(66));
    let cfg = MachineConfig::paper_table1();
    for (label, access) in [
        ("stream", AccessPattern::Stream { stride: 128 }),
        ("random", AccessPattern::RandomIndex),
        ("chase", AccessPattern::PointerChase),
    ] {
        for footprint in [64 * 1024u64, 1 << 20, 8 << 20] {
            let w = SynthSpec {
                access,
                footprint_bytes: footprint,
                iterations: 2_000,
                alu_chain: 3,
                ..SynthSpec::default()
            }
            .build();
            let base = Baseline::new(&w.program, w.memory.clone(), cfg.clone()).run(w.budget);
            let tp = TwoPass::new(&w.program, w.memory.clone(), cfg.clone()).run(w.budget);
            println!(
                "{:>14} {:>9} KB {:>12} {:>12} {:>8.2}x",
                label,
                footprint / 1024,
                base.cycles,
                tp.cycles,
                tp.speedup_over(&base)
            );
        }
        println!();
    }
    println!("streams overlap misses (speedup grows with miss cost); chases cannot.");
}
