//! The paper's Figure 4, reconstructed from a live pipeline trace.
//!
//! Figure 4 walks the 181.mcf loop of Figure 1 through the two-pass
//! machine: a load misses in the A-pipe, its dependent instructions are
//! deferred and marked in the coupling queue, independent instructions
//! (and further misses) keep issuing, and the B-pipe later re-executes
//! the deferred work as results arrive. This example runs the mcf-like
//! kernel with tracing enabled and prints the per-instruction timeline
//! of two steady-state iterations — dispatch cycle, executed/deferred
//! mode, retire cycle, and coupling-queue residency.
//!
//! ```text
//! cargo run --release --example figure4_walkthrough
//! ```

use fleaflicker::core::{MachineConfig, TwoPass};
use fleaflicker::workloads::{benchmark_by_name, Scale};

fn main() {
    let w = benchmark_by_name("181.mcf", Scale::Tiny).expect("mcf-like is built in");
    let (report, trace) = TwoPass::new(&w.program, w.memory.clone(), MachineConfig::paper_table1())
        .run_traced(w.budget);

    println!(
        "mcf-like on the two-pass machine: {} cycles, {} retired\n",
        report.cycles, report.retired
    );
    println!("program (one loop iteration starts at the `ld8 r10 = ...` group):\n");
    for (pc, insn) in w.program.iter().enumerate().take(20) {
        println!("  {pc:>3}: {insn}");
    }

    // Two steady-state iterations (skip warmup): the mcf loop body is 13
    // instructions; iteration k covers seqs ~[6 + 13k, 6 + 13(k+2)).
    let start = 6 + 13 * 8;
    println!("\nper-instruction timeline (two steady-state iterations):\n");
    print!("{}", trace.timeline(start..start + 26));
    println!(
        "\nReading it like Figure 4: arc-field loads ('executed') start misses in the\n\
         A-pipe and sit in the queue until their fills land; the dependent node loads\n\
         and flow updates ('deferred') execute for the first time in the B-pipe."
    );
}
